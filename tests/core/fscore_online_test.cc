#include "core/assignment/fscore_online.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/assignment/brute_force.h"
#include "core/metrics/fscore.h"
#include "util/rng.h"

namespace qasca {
namespace {

DistributionMatrix Figure2Qc() {
  DistributionMatrix qc(6, 2);
  qc.SetRow(0, std::vector<double>{0.8, 0.2});
  qc.SetRow(1, std::vector<double>{0.6, 0.4});
  qc.SetRow(2, std::vector<double>{0.25, 0.75});
  qc.SetRow(3, std::vector<double>{0.5, 0.5});
  qc.SetRow(4, std::vector<double>{0.9, 0.1});
  qc.SetRow(5, std::vector<double>{0.3, 0.7});
  return qc;
}

DistributionMatrix Figure2Qw() {
  DistributionMatrix qw = Figure2Qc();
  qw.SetRow(0, std::vector<double>{0.923, 0.077});
  qw.SetRow(1, std::vector<double>{0.818, 0.182});
  qw.SetRow(3, std::vector<double>{0.75, 0.25});
  qw.SetRow(5, std::vector<double>{0.125, 0.875});
  return qw;
}

AssignmentRequest Figure2Request(const DistributionMatrix& qc,
                                 const DistributionMatrix& qw) {
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = {0, 1, 3, 5};
  request.k = 2;
  return request;
}

TEST(FScoreOnlineTest, PaperExample5SelectsQ1AndQ2) {
  // Example 5: with alpha = 0.75 the optimal assignment is {q1, q2} and
  // delta* = 0.832: Precision-heavy alpha prefers boosting already-likely
  // target questions over the Accuracy pick {q2, q4} of Example 4.
  DistributionMatrix qc = Figure2Qc();
  DistributionMatrix qw = Figure2Qw();
  FScoreAssignmentOptions options;
  options.alpha = 0.75;
  for (bool warm_start : {false, true}) {
    options.warm_start = warm_start;
    AssignmentResult result =
        AssignFScoreOnline(Figure2Request(qc, qw), options);
    EXPECT_EQ(result.selected, (std::vector<QuestionIndex>{0, 1}))
        << "warm_start=" << warm_start;
    EXPECT_NEAR(result.objective, 0.832, 1e-3) << "warm_start=" << warm_start;
  }
}

TEST(FScoreOnlineTest, ObjectiveEqualsQualityOfChosenAssignment) {
  DistributionMatrix qc = Figure2Qc();
  DistributionMatrix qw = Figure2Qw();
  FScoreAssignmentOptions options;
  options.alpha = 0.75;
  AssignmentResult result = AssignFScoreOnline(Figure2Request(qc, qw), options);
  FScoreMetric metric(options.alpha);
  DistributionMatrix qx = BuildAssignmentMatrix(qc, qw, result.selected);
  EXPECT_NEAR(result.objective, metric.Quality(qx), 1e-9);
}

class FScoreOnlineSweep : public ::testing::TestWithParam<int> {};

TEST_P(FScoreOnlineSweep, MatchesBruteForceOptimum) {
  util::Rng rng(6000 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    int n = 4 + rng.UniformInt(5);  // 4..8
    DistributionMatrix qc(n, 2);
    DistributionMatrix qw(n, 2);
    for (int i = 0; i < n; ++i) {
      double pc = rng.Uniform();
      double pw = rng.Uniform();
      qc.SetRow(i, std::vector<double>{pc, 1.0 - pc});
      qw.SetRow(i, std::vector<double>{pw, 1.0 - pw});
    }
    int m = 2 + rng.UniformInt(n - 1);
    std::vector<int> candidates = rng.SampleWithoutReplacement(n, m);
    int k = 1 + rng.UniformInt(m);
    double alpha = rng.Uniform(0.05, 0.95);

    AssignmentRequest request;
    request.current = &qc;
    request.estimated = &qw;
    request.candidates = candidates;
    request.k = k;

    FScoreMetric metric(alpha);
    FScoreAssignmentOptions options;
    options.alpha = alpha;
    for (bool warm_start : {false, true}) {
      options.warm_start = warm_start;
      AssignmentResult fast = AssignFScoreOnline(request, options);
      AssignmentResult slow = AssignBruteForce(request, metric);
      EXPECT_NEAR(fast.objective, slow.objective, 1e-9)
          << "n=" << n << " m=" << m << " k=" << k << " alpha=" << alpha
          << " warm_start=" << warm_start;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FScoreOnlineSweep, ::testing::Range(0, 10));

TEST(FScoreOnlineTest, WarmAndColdStartAgreeOnObjective) {
  util::Rng rng(61);
  DistributionMatrix qc(40, 2);
  DistributionMatrix qw(40, 2);
  for (int i = 0; i < 40; ++i) {
    double pc = rng.Uniform();
    double pw = rng.Uniform();
    qc.SetRow(i, std::vector<double>{pc, 1.0 - pc});
    qw.SetRow(i, std::vector<double>{pw, 1.0 - pw});
  }
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  for (int i = 0; i < 40; ++i) request.candidates.push_back(i);
  request.k = 5;
  for (double alpha : {0.25, 0.5, 0.75, 0.95}) {
    FScoreAssignmentOptions options;
    options.alpha = alpha;
    options.warm_start = false;
    double cold = AssignFScoreOnline(request, options).objective;
    options.warm_start = true;
    double warm = AssignFScoreOnline(request, options).objective;
    EXPECT_NEAR(cold, warm, 1e-9) << "alpha=" << alpha;
  }
}

TEST(FScoreOnlineTest, IterationProductStaysSmall) {
  // Section 6.1.3 observes u*v <= 10 in practice.
  util::Rng rng(62);
  DistributionMatrix qc(500, 2);
  DistributionMatrix qw(500, 2);
  for (int i = 0; i < 500; ++i) {
    double pc = rng.Uniform();
    double pw = rng.Uniform();
    qc.SetRow(i, std::vector<double>{pc, 1.0 - pc});
    qw.SetRow(i, std::vector<double>{pw, 1.0 - pw});
  }
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  for (int i = 0; i < 500; ++i) request.candidates.push_back(i);
  request.k = 20;
  for (double alpha : {0.1, 0.5, 0.9}) {
    FScoreAssignmentOptions options;
    options.alpha = alpha;
    options.warm_start = true;
    AssignmentResult result = AssignFScoreOnline(request, options);
    EXPECT_LE(result.outer_iterations, 10) << "alpha=" << alpha;
    EXPECT_LE(result.inner_iterations, 40) << "alpha=" << alpha;
  }
}

TEST(FScoreOnlineTest, NonZeroTargetLabelMatchesBruteForce) {
  util::Rng rng(63);
  for (int trial = 0; trial < 10; ++trial) {
    DistributionMatrix qc(6, 3);
    DistributionMatrix qw(6, 3);
    std::vector<double> w(3);
    for (int i = 0; i < 6; ++i) {
      for (double& x : w) x = rng.Uniform(0.01, 1.0);
      qc.SetRowNormalized(i, w);
      for (double& x : w) x = rng.Uniform(0.01, 1.0);
      qw.SetRowNormalized(i, w);
    }
    AssignmentRequest request;
    request.current = &qc;
    request.estimated = &qw;
    request.candidates = {0, 1, 2, 3, 4, 5};
    request.k = 2;
    FScoreAssignmentOptions options;
    options.alpha = 0.6;
    options.target_label = 2;
    FScoreMetric metric(options.alpha, options.target_label);
    AssignmentResult fast = AssignFScoreOnline(request, options);
    AssignmentResult slow = AssignBruteForce(request, metric);
    EXPECT_NEAR(fast.objective, slow.objective, 1e-9) << "trial " << trial;
  }
}

TEST(FScoreOnlineTest, DegenerateAllZeroTargetProbabilities) {
  DistributionMatrix qc(4, 2);
  DistributionMatrix qw(4, 2);
  for (int i = 0; i < 4; ++i) {
    qc.SetRow(i, std::vector<double>{0.0, 1.0});
    qw.SetRow(i, std::vector<double>{0.0, 1.0});
  }
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = {0, 1, 2, 3};
  request.k = 2;
  FScoreAssignmentOptions options;
  options.alpha = 0.5;
  AssignmentResult result = AssignFScoreOnline(request, options);
  EXPECT_EQ(result.selected.size(), 2u);
  EXPECT_DOUBLE_EQ(result.objective, 0.0);
}

}  // namespace
}  // namespace qasca
