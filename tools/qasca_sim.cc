// qasca_sim — command-line driver for the simulated end-to-end comparison.
//
// Usage:
//   qasca_sim [--app FS|SA|ER|PSA|NSA|CompanyLogo] [--seeds N]
//             [--checkpoints N] [--systems a,b,...] [--csv] [--scale F]
//
//   --app          application to run (default FS)
//   --seeds        number of independent simulated worlds to average
//                  (default 3)
//   --checkpoints  quality samples along the HIT axis (default 10)
//   --systems      comma-separated subset of
//                  Baseline,CDAS,AskIt!,QASCA,MaxMargin,ExpLoss
//                  (default: all six)
//   --scale        shrink factor in (0,1] applied to n and the worker pool
//                  for quick runs (default 1.0)
//   --csv          emit CSV instead of an aligned table
//   --telemetry    instead of the comparison, run one instrumented QASCA
//                  engine under each assignment algorithm (Accuracy* and
//                  F-score*) and print the per-stage telemetry report
//                  (span latencies p50/p95/p99, counters, gauges)
//   --trace-out FILE
//                  run one flight-recorder-instrumented QASCA engine and
//                  write its span timeline as Chrome/Perfetto trace-event
//                  JSON (load in chrome://tracing or https://ui.perfetto.dev)
//   --provenance-out FILE
//                  with the same instrumented run, write one JSONL decision
//                  provenance record per assignment (chosen questions +
//                  benefit scores, kernel ISA, cache/overlay usage, journal
//                  sequencing); combine with --trace-out to get both from a
//                  single run
//   --apps N       serving mode (DESIGN.md §14): host N QASCA apps in one
//                  AppManager and storm them with a seeded interleaved
//                  multi-app workload, then print per-app serving stats
//   --worker-threads M
//                  worker threads for the serving storm (default 4); the
//                  run re-executes the identical schedule single-threaded
//                  and verifies per-app decisions were bit-identical
//
// Examples:
//   qasca_sim --app ER --seeds 5
//   qasca_sim --app NSA --systems Baseline,QASCA --scale 0.25 --csv
//   qasca_sim --telemetry
//   qasca_sim --trace-out trace.json --provenance-out decisions.jsonl
//   qasca_sim --apps 8 --worker-threads 4

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/experiment_driver.h"
#include "platform/app_manager.h"
#include "platform/engine.h"
#include "platform/qasca_strategy.h"
#include "simulation/serving_driver.h"
#include "util/table.h"

namespace qasca {
namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--app NAME] [--seeds N] [--checkpoints N] "
               "[--systems a,b,...] [--scale F] [--csv] [--telemetry] "
               "[--trace-out FILE] [--provenance-out FILE] "
               "[--apps N [--worker-threads M]]\n",
               argv0);
  std::exit(2);
}

ApplicationSpec AppByName(const std::string& name) {
  for (const ApplicationSpec& spec : PaperApplications()) {
    if (spec.name == name) return spec;
  }
  if (name == "CompanyLogo") return CompanyLogoApp();
  std::fprintf(stderr, "unknown app '%s' (try FS SA ER PSA NSA CompanyLogo)\n",
               name.c_str());
  std::exit(2);
}

std::vector<std::string> SplitCommas(const std::string& value) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : value) {
    if (c == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

// Deterministic pseudo-noisy worker for the telemetry demo runs: the answer
// depends only on (worker, question, truth), so the printed counters are
// reproducible run to run. ~25% of answers are wrong.
LabelIndex SimulatedAnswer(WorkerId worker, QuestionIndex question,
                           LabelIndex truth, int num_labels) {
  uint64_t h = (static_cast<uint64_t>(worker) * 1000003u +
                static_cast<uint64_t>(question) + 1) *
               0x9e3779b97f4a7c15ull;
  h ^= h >> 31;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  if (h % 100 < 25) {
    return static_cast<LabelIndex>(
        (static_cast<uint64_t>(truth) + 1 + h % (num_labels - 1)) %
        num_labels);
  }
  return truth;
}

// Drives one fully instrumented QASCA engine to budget exhaustion and
// prints its per-stage telemetry report.
void RunInstrumented(const char* title, const MetricSpec& metric) {
  AppConfig config;
  config.name = "telemetry-demo";
  config.num_questions = 200;
  config.num_labels = 2;
  config.questions_per_hit = 5;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * 60;  // 60 HITs
  config.metric = metric;
  config.em_refresh_interval = 4;
  config.telemetry_enabled = true;

  GroundTruthVector truth(config.num_questions);
  for (int q = 0; q < config.num_questions; ++q) {
    truth[q] = q % config.num_labels;
  }

  TaskAssignmentEngine engine(config, std::make_unique<QascaStrategy>(),
                              /*seed=*/7);
  int round = 0;
  while (!engine.BudgetExhausted()) {
    const WorkerId worker = round++ % 8;
    auto hit = engine.RequestHit(worker);
    if (!hit.ok()) break;
    std::vector<LabelIndex> labels;
    labels.reserve(hit->size());
    for (QuestionIndex q : *hit) {
      labels.push_back(SimulatedAnswer(worker, q, truth[q],
                                       config.num_labels));
    }
    util::Status done = engine.CompleteHit(worker, labels);
    if (!done.ok()) break;
  }

  std::printf("=== %s: %d HITs assigned, quality %.4f ===\n", title,
              engine.assigned_hits(), engine.QualityAgainstTruth(truth));
  std::fputs(engine.telemetry().ToReport().c_str(), stdout);
  std::printf("\n");
}

int RunTelemetry() {
  RunInstrumented("Accuracy* (Top-K Benefit)", MetricSpec::Accuracy());
  RunInstrumented("F-score* (Dinkelbach online)", MetricSpec::FScore(0.5, 0));
  return 0;
}

// Writes `contents` to `path`, replacing any existing file.
int WriteFileOrDie(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
    return 1;
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int close_err = std::fclose(f);
  if (written != contents.size() || close_err != 0) {
    std::fprintf(stderr, "short write to '%s'\n", path.c_str());
    return 1;
  }
  return 0;
}

// Drives one observability-instrumented QASCA engine (flight recorder +
// decision provenance + assignment SLO tracker all on) to budget exhaustion,
// then exports the requested artifacts. Same deterministic workload as the
// --telemetry demo, so traces are reproducible run to run.
int RunObservabilityExport(const std::string& trace_path,
                           const std::string& provenance_path) {
  AppConfig config;
  config.name = "trace-demo";
  config.num_questions = 200;
  config.num_labels = 2;
  config.questions_per_hit = 5;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * 60;  // 60 HITs
  config.metric = MetricSpec::Accuracy();
  config.em_refresh_interval = 4;
  config.flight_recorder_enabled = true;
  config.provenance_enabled = true;
  config.slo_p95_assign_ms = 5.0;
  config.latency_window_samples = 64;

  GroundTruthVector truth(config.num_questions);
  for (int q = 0; q < config.num_questions; ++q) {
    truth[q] = q % config.num_labels;
  }

  TaskAssignmentEngine engine(config, std::make_unique<QascaStrategy>(),
                              /*seed=*/7);
  int round = 0;
  while (!engine.BudgetExhausted()) {
    const WorkerId worker = round++ % 8;
    auto hit = engine.RequestHit(worker);
    if (!hit.ok()) break;
    std::vector<LabelIndex> labels;
    labels.reserve(hit->size());
    for (QuestionIndex q : *hit) {
      labels.push_back(SimulatedAnswer(worker, q, truth[q],
                                       config.num_labels));
    }
    util::Status done = engine.CompleteHit(worker, labels);
    if (!done.ok()) break;
  }

  std::fprintf(stderr, "observability run: %d HITs assigned, quality %.4f\n",
               engine.assigned_hits(), engine.QualityAgainstTruth(truth));
  if (!trace_path.empty()) {
    const util::FlightRecorder* recorder = engine.flight_recorder();
    if (recorder == nullptr) {
      std::fprintf(stderr, "flight recorder unexpectedly absent\n");
      return 1;
    }
    if (int rc = WriteFileOrDie(trace_path, recorder->ToChromeJson())) {
      return rc;
    }
    std::fprintf(stderr, "wrote %s (%lld events recorded)\n",
                 trace_path.c_str(),
                 static_cast<long long>(recorder->total_events()));
  }
  if (!provenance_path.empty()) {
    const ProvenanceLog* provenance = engine.provenance();
    if (provenance == nullptr) {
      std::fprintf(stderr, "provenance log unexpectedly absent\n");
      return 1;
    }
    if (int rc =
            WriteFileOrDie(provenance_path, provenance->ToJsonLines())) {
      return rc;
    }
    std::fprintf(stderr, "wrote %s (%lld decision records)\n",
                 provenance_path.c_str(),
                 static_cast<long long>(provenance->total_appended()));
  }
  return 0;
}

// Serving mode (DESIGN.md §14): one AppManager hosting `apps` QASCA apps,
// stormed by `worker_threads` racing threads executing a seeded interleaved
// multi-app schedule, with per-app SLO trackers live. The identical
// schedule is then replayed single-threaded as the determinism oracle.
int RunServing(int apps, int worker_threads) {
  ServingWorkloadOptions options;
  options.apps = apps;
  options.workers_per_app = 8;
  options.events_per_app = 200;
  options.num_questions = 50;
  options.questions_per_hit = 3;
  options.em_refresh_interval = 4;
  options.lease_timeout_ticks = 6;
  options.slo_p95_assign_ms = 5.0;
  const uint64_t seed = 20100;

  const ServingSchedule schedule = ServingSchedule::Generate(options, seed);
  std::fprintf(stderr,
               "serving storm: %d apps x %d events, %d worker thread(s), "
               "%zu interleaved events\n",
               options.apps, options.events_per_app, worker_threads,
               schedule.events().size());

  AppManager manager;
  util::Status built = BuildServingApps(manager, options, seed);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.ToString().c_str());
    return 1;
  }
  const ServingRunResult storm =
      RunServingSchedule(manager, schedule, options, worker_threads);

  AppManager oracle;
  built = BuildServingApps(oracle, options, seed);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.ToString().c_str());
    return 1;
  }
  const ServingRunResult serial =
      RunServingSchedule(oracle, schedule, options, 1);
  const bool identical = storm.decision_hashes == serial.decision_hashes &&
                         storm.fingerprints == serial.fingerprints;

  util::Table table({"app", "assigned", "completed", "open", "expired",
                     "p95 assign (ms)", "decision hash"});
  for (int app = 0; app < options.apps; ++app) {
    auto stats = manager.StatsFor(app);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(
                      storm.decision_hashes[static_cast<size_t>(app)]));
    table.AddRow()
        .Cell(int64_t{app})
        .Cell(int64_t{stats->assigned_hits})
        .Cell(int64_t{stats->completed_hits})
        .Cell(int64_t{stats->open_hits})
        .Cell(int64_t{stats->leases_expired})
        .Cell(stats->window_p95_seconds * 1e3, 4)
        .Cell(hash);
  }
  table.Print();
  std::printf(
      "%lld events/s (%lld assignments, %lld completions, %lld batches); "
      "decisions identical to the serial replay: %s\n",
      static_cast<long long>(
          storm.elapsed_seconds > 0
              ? static_cast<double>(options.apps) * options.events_per_app /
                    storm.elapsed_seconds
              : 0.0),
      static_cast<long long>(storm.assignments),
      static_cast<long long>(storm.completions),
      static_cast<long long>(storm.batches), identical ? "yes" : "NO");
  return identical ? 0 : 1;
}

int Run(int argc, char** argv) {
  std::string app_name = "FS";
  int seeds = 3;
  int checkpoints = 10;
  double scale = 1.0;
  bool csv = false;
  int serving_apps = 0;
  int worker_threads = 4;
  std::string trace_out;
  std::string provenance_out;
  std::vector<std::string> system_names;

  for (int a = 1; a < argc; ++a) {
    std::string flag = argv[a];
    // Accept both `--flag value` and `--flag=value`.
    std::string inline_value;
    bool has_inline_value = false;
    if (size_t eq = flag.find('='); eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag.resize(eq);
      has_inline_value = true;
    }
    auto next_value = [&]() -> std::string {
      if (has_inline_value) return inline_value;
      if (a + 1 >= argc) Usage(argv[0]);
      return argv[++a];
    };
    if (flag == "--app") {
      app_name = next_value();
    } else if (flag == "--seeds") {
      seeds = std::atoi(next_value().c_str());
      if (seeds <= 0) Usage(argv[0]);
    } else if (flag == "--checkpoints") {
      checkpoints = std::atoi(next_value().c_str());
      if (checkpoints <= 0) Usage(argv[0]);
    } else if (flag == "--systems") {
      system_names = SplitCommas(next_value());
    } else if (flag == "--scale") {
      scale = std::atof(next_value().c_str());
      if (scale <= 0.0 || scale > 1.0) Usage(argv[0]);
    } else if (flag == "--csv") {
      csv = true;
    } else if (flag == "--telemetry") {
      return RunTelemetry();
    } else if (flag == "--trace-out") {
      trace_out = next_value();
    } else if (flag == "--provenance-out") {
      provenance_out = next_value();
    } else if (flag == "--apps") {
      serving_apps = std::atoi(next_value().c_str());
      if (serving_apps <= 0) Usage(argv[0]);
    } else if (flag == "--worker-threads") {
      worker_threads = std::atoi(next_value().c_str());
      if (worker_threads <= 0) Usage(argv[0]);
    } else {
      Usage(argv[0]);
    }
  }

  if (serving_apps > 0) {
    return RunServing(serving_apps, worker_threads);
  }

  if (!trace_out.empty() || !provenance_out.empty()) {
    return RunObservabilityExport(trace_out, provenance_out);
  }

  ApplicationSpec spec = AppByName(app_name);
  if (scale < 1.0) {
    spec.num_questions =
        std::max(spec.questions_per_hit * 4,
                 static_cast<int>(spec.num_questions * scale));
    spec.workers.num_workers =
        std::max(4, static_cast<int>(spec.workers.num_workers * scale));
  }

  std::vector<SystemFactory> all = DefaultSystems();
  std::vector<SystemFactory> systems;
  if (system_names.empty()) {
    systems = all;
  } else {
    for (const std::string& name : system_names) {
      bool found = false;
      for (const SystemFactory& factory : all) {
        if (factory.name == name) {
          systems.push_back(factory);
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "unknown system '%s'\n", name.c_str());
        return 2;
      }
    }
  }

  std::fprintf(stderr,
               "running %s: n=%d, k=%d, %d HITs, %d worker(s) pool, %d "
               "seed(s), metric=%s\n",
               spec.name.c_str(), spec.num_questions, spec.questions_per_hit,
               spec.TotalHits(), spec.workers.num_workers, seeds,
               spec.metric.Make()->name().c_str());

  bench::AveragedTraces traces = bench::RunAveraged(
      spec, systems, seeds, checkpoints, /*track_estimation_deviation=*/false);

  std::vector<std::string> header = {"HITs"};
  for (const std::string& name : traces.system_names) header.push_back(name);
  util::Table table(header);
  for (size_t c = 0; c < traces.completed_hits.size(); ++c) {
    table.AddRow().Cell(int64_t{traces.completed_hits[c]});
    for (size_t s = 0; s < traces.system_names.size(); ++s) {
      table.Percent(traces.quality[s][c], 2);
    }
  }
  if (csv) {
    std::fputs(table.ToCsv().c_str(), stdout);
  } else {
    table.Print();
  }
  return 0;
}

}  // namespace
}  // namespace qasca

int main(int argc, char** argv) { return qasca::Run(argc, argv); }
