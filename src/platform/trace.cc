#include "platform/trace.h"

#include "util/json.h"
#include "util/logging.h"

namespace qasca {

// Default tick source: nanoseconds since the trace was constructed, so
// traces from different runs line up at t_ns = 0.
EventTrace::EventTrace() : tick_source_(util::SteadyTickSource()) {}

EventTrace::EventTrace(TickSource tick_source)
    : tick_source_(std::move(tick_source)) {
  QASCA_CHECK(tick_source_ != nullptr);
}

void EventTrace::RecordAssignment(
    WorkerId worker, const std::vector<QuestionIndex>& questions) {
  Event event;
  event.sequence = size();
  event.t_ns = tick_source_();
  event.kind = Kind::kHitAssigned;
  event.worker = worker;
  event.questions = questions;
  events_.push_back(std::move(event));
}

void EventTrace::RecordCompletion(
    WorkerId worker, const std::vector<QuestionIndex>& questions,
    const std::vector<LabelIndex>& labels) {
  QASCA_CHECK_EQ(questions.size(), labels.size());
  Event event;
  event.sequence = size();
  event.t_ns = tick_source_();
  event.kind = Kind::kHitCompleted;
  event.worker = worker;
  event.questions = questions;
  event.labels = labels;
  events_.push_back(std::move(event));
}

void EventTrace::RecordLeaseExpiry(
    WorkerId worker, const std::vector<QuestionIndex>& questions) {
  Event event;
  event.sequence = size();
  event.t_ns = tick_source_();
  event.kind = Kind::kLeaseExpired;
  event.worker = worker;
  event.questions = questions;
  events_.push_back(std::move(event));
}

int EventTrace::CountOf(Kind kind) const {
  int count = 0;
  for (const Event& event : events_) {
    if (event.kind == kind) ++count;
  }
  return count;
}

std::string EventTrace::ToJsonLines() const {
  std::string out;
  auto append_array = [&out](const char* key, const auto& values) {
    out += '"';
    out += key;
    out += "\":[";
    for (size_t v = 0; v < values.size(); ++v) {
      if (v > 0) out += ',';
      out += std::to_string(values[v]);
    }
    out += ']';
  };
  for (const Event& event : events_) {
    out += "{\"seq\":";
    out += std::to_string(event.sequence);
    out += ",\"t_ns\":";
    out += std::to_string(event.t_ns);
    out += ",\"kind\":";
    const char* kind_name = "assigned";
    if (event.kind == Kind::kHitCompleted) kind_name = "completed";
    if (event.kind == Kind::kLeaseExpired) kind_name = "lease_expired";
    util::AppendJsonString(out, kind_name);
    out += ",\"worker\":";
    out += std::to_string(event.worker);
    out += ',';
    append_array("questions", event.questions);
    out += ',';
    append_array("labels", event.labels);
    out += "}\n";
  }
  return out;
}

}  // namespace qasca
