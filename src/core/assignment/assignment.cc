#include "core/assignment/assignment.h"

#include "util/invariants.h"
#include "util/logging.h"

namespace qasca {

DistributionMatrix BuildAssignmentMatrix(
    const DistributionMatrix& current, const DistributionMatrix& estimated,
    const std::vector<QuestionIndex>& selected) {
  QASCA_CHECK_EQ(current.num_questions(), estimated.num_questions());
  QASCA_CHECK_EQ(current.num_labels(), estimated.num_labels());
  DistributionMatrix result = current;
  for (QuestionIndex i : selected) {
    result.SetRow(i, estimated.Row(i));
  }
  return result;
}

DistributionMatrix BuildAssignmentMatrix(
    const AssignmentRequest& request,
    const std::vector<QuestionIndex>& selected) {
  DistributionMatrix result = *request.current;
  for (QuestionIndex i : selected) {
    result.SetRow(i, request.EstimatedRow(i));
  }
  return result;
}

void ValidateRequest(const AssignmentRequest& request) {
  QASCA_CHECK(request.current != nullptr);
  QASCA_CHECK(request.estimated != nullptr);
  QASCA_CHECK_EQ(request.current->num_questions(),
                 request.estimated->num_questions());
  QASCA_CHECK_EQ(request.current->num_labels(),
                 request.estimated->num_labels());
  if (request.overlay != nullptr) {
    // Overlay rows must be shaped like the matrices they overlay; question
    // range is enforced per-read by QwOverlay itself.
    QASCA_CHECK_EQ(request.overlay->num_labels(),
                   request.current->num_labels());
    QASCA_CHECK_EQ(request.overlay->num_questions(),
                   request.current->num_questions());
  }
  QASCA_CHECK_GT(request.k, 0);
  QASCA_CHECK_LE(static_cast<size_t>(request.k), request.candidates.size());
  QASCA_CHECK_OK(invariants::CheckCandidateSet(
      request.candidates, request.current->num_questions()));
  // Rows of `estimated` outside the candidate set are allowed to be stale,
  // so only the current matrix is validated wholesale; the estimated rows
  // that will actually be read are checked per-candidate (through the
  // overlay when one is attached, exactly as the algorithms read them).
  QASCA_DCHECK_OK(invariants::CheckDistributionMatrix(*request.current));
#if QASCA_ENABLE_DCHECKS
  for (QuestionIndex i : request.candidates) {
    util::Status status =
        invariants::CheckDistributionRow(request.EstimatedRow(i));
    QASCA_DCHECK(status.ok()) << "estimated row " << i << ": "
                              << status.ToString();
  }
#endif
}

}  // namespace qasca
