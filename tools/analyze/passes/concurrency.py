"""Shared class/lock indexing for the concurrency passes.

`lock-order` and `guarded-by-coverage` both need a tree-wide view of which
classes own which mutexes, and a way to resolve a `util::MutexLock`
acquisition expression (frontend.LockScope) back to a stable lock identity
("Class::member"). That resolution is deliberately conservative: when a
member name is ambiguous across classes and neither the enclosing class,
the range-for container type, nor the local declaration hints narrow it to
exactly one owner, the scope falls back to a file-scoped identity instead
of guessing.
"""

from __future__ import annotations

import re

from ..base import SourceTree
from ..frontend import ClassDef, LockScope

_ID = re.compile(r"[A-Za-z_]\w*")

# Reference/pointer mutex members (e.g. `Mutex& mu_;` inside MutexLock
# itself) alias a lock owned elsewhere — they are not lock identities.
_ALIAS_MARKERS = ("*", "&")


def _type_ids(type_text: str) -> set[str]:
    return set(_ID.findall(type_text))


class ClassIndex:
    """Tree-wide class table with mutex-ownership lookups."""

    def __init__(self, tree: SourceTree, roots: tuple[str, ...] = ("src",)):
        self.classes: dict[str, tuple[ClassDef, str]] = {}
        self.mutex_members: dict[str, set[str]] = {}
        self.by_member: dict[str, list[str]] = {}
        for source in tree.files(roots):
            model = tree.model(source)
            for cls in model.classes:
                self.classes[cls.name] = (cls, source.rel)
                owned = {m.name for m in cls.members
                         if m.mutex and not any(mark in m.type_text
                                                for mark in _ALIAS_MARKERS)}
                if owned:
                    self.mutex_members[cls.name] = owned
                    for name in sorted(owned):
                        self.by_member.setdefault(name, []).append(cls.name)

    def enclosing_class(self, qualname: str) -> str | None:
        """The class qualname a `Class::Method` function name belongs to."""
        if "::" not in qualname:
            return None
        prefix = qualname.rsplit("::", 1)[0]
        if prefix in self.classes:
            return prefix
        # Out-of-line definitions spell only the tail (`Shard::Record` for a
        # nested FlightRecorder::Shard): match by last component.
        last = prefix.rsplit("::", 1)[-1]
        for qual in sorted(self.classes):
            if qual.rsplit("::", 1)[-1] == last:
                return qual
        return None

    def member_type_ids(self, class_qual: str, member_name: str) -> set[str]:
        entry = self.classes.get(class_qual)
        if entry is None:
            return set()
        for member in entry[0].members:
            if member.name == member_name:
                return _type_ids(member.type_text)
        return set()

    def resolve_scope(self, scope: LockScope, rel: str) -> str:
        """Stable lock identity for a MutexLock scope: "Class::member"
        when the owner is unambiguous, else a file-scoped fallback."""
        encl = self.enclosing_class(scope.function) if scope.function \
            else None
        if scope.base == scope.member:
            # Plain `mutex_`: it is our own member iff the enclosing class
            # declares a mutex of that name.
            if encl is not None and \
                    scope.member in self.mutex_members.get(encl, set()):
                return f"{encl}::{scope.member}"
        else:
            candidates = sorted(self.by_member.get(scope.member, []))
            if len(candidates) == 1:
                return f"{candidates[0]}::{scope.member}"
            hints = set(scope.local_hints)
            if encl is not None and scope.container:
                hints |= self.member_type_ids(encl, scope.container)
            if encl is not None and scope.base:
                # `shards_[i].mutex`: the receiver may itself be a member.
                hints |= self.member_type_ids(encl, scope.base)
            narrowed = [qual for qual in candidates
                        if set(qual.split("::")) & hints]
            if len(narrowed) == 1:
                return f"{narrowed[0]}::{scope.member}"
        return f"{rel}:{scope.expr}"
