#ifndef CORE_BAD_GUARD_H  // analyze:expect(include-hygiene)
#define CORE_BAD_GUARD_H

// include-hygiene fixture: the guard does not match the canonical
// QASCA_CORE_BAD_GUARD_H_ derived from this file's path.

#endif  // CORE_BAD_GUARD_H
