#include "bench/bench_util.h"

#include "model/posterior.h"
#include "model/worker_model.h"

namespace qasca::bench {

DistributionMatrix RandomBinaryMatrix(int n, util::Rng& rng) {
  DistributionMatrix q(n, 2);
  for (int i = 0; i < n; ++i) {
    double p = rng.Uniform();
    q.SetRow(i, std::vector<double>{p, 1.0 - p});
  }
  return q;
}

DistributionMatrix RandomMatrix(int n, int num_labels, util::Rng& rng) {
  DistributionMatrix q(n, num_labels);
  std::vector<double> weights(num_labels);
  for (int i = 0; i < n; ++i) {
    for (double& w : weights) w = rng.Uniform(1e-6, 1.0);
    q.SetRowNormalized(i, weights);
  }
  return q;
}

ResultVector RandomBinaryResult(int n, util::Rng& rng) {
  ResultVector result(n);
  for (int i = 0; i < n; ++i) result[i] = rng.UniformInt(2);
  return result;
}

DistributionMatrix DeriveEstimatedMatrix(const DistributionMatrix& current,
                                         util::Rng& rng) {
  // A random two-label confusion matrix with diagonal in [0.55, 0.95].
  double d0 = rng.Uniform(0.55, 0.95);
  double d1 = rng.Uniform(0.55, 0.95);
  WorkerModel model =
      WorkerModel::Cm({d0, 1.0 - d0, 1.0 - d1, d1}, 2);
  std::vector<QuestionIndex> all(current.num_questions());
  for (int i = 0; i < current.num_questions(); ++i) all[i] = i;
  return EstimateWorkerDistribution(current, model, all, QwMode::kSampled,
                                    rng);
}

}  // namespace qasca::bench
