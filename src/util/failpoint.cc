#include "util/failpoint.h"

#include <cstdlib>

namespace qasca::util {

FailPoints& FailPoints::Global() {
  static FailPoints* instance = new FailPoints();
  return *instance;
}

void FailPoints::Arm(const std::string& name, uint64_t skip, uint64_t limit) {
  QASCA_CHECK(!name.empty()) << "fail point name must be non-empty";
  MutexLock lock(mutex_);
  auto [it, inserted] = points_.try_emplace(name);
  it->second.skip = skip;
  it->second.limit = limit;
  it->second.hits = 0;
  it->second.triggered = 0;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FailPoints::Disarm(const std::string& name) {
  MutexLock lock(mutex_);
  if (points_.erase(name) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoints::DisarmAll() {
  MutexLock lock(mutex_);
  armed_count_.fetch_sub(static_cast<int>(points_.size()),
                         std::memory_order_relaxed);
  points_.clear();
}

bool FailPoints::Hit(const std::string& name) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  MutexLock lock(mutex_);
  auto it = points_.find(name);
  if (it == points_.end()) return false;
  Point& point = it->second;
  const uint64_t hit = point.hits++;
  if (hit < point.skip || hit >= point.skip + point.limit) return false;
  ++point.triggered;
  return true;
}

uint64_t FailPoints::TriggeredCount(const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.triggered;
}

std::vector<std::string> FailPoints::ArmFromEnv() {
  std::vector<std::string> armed;
  const char* spec = std::getenv("QASCA_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return armed;
  std::string entry;
  auto arm_entry = [this, &armed](const std::string& text) {
    if (text.empty()) return;
    uint64_t skip = 0;
    uint64_t limit = 1;
    std::string name = text;
    const size_t eq = text.find('=');
    if (eq != std::string::npos) {
      name = text.substr(0, eq);
      const std::string counts = text.substr(eq + 1);
      const size_t colon = counts.find(':');
      size_t parsed = 0;
      skip = std::stoull(counts.substr(0, colon), &parsed);
      QASCA_CHECK(parsed == (colon == std::string::npos ? counts.size()
                                                        : colon))
          << "bad QASCA_FAILPOINTS skip count in" << text;
      if (colon != std::string::npos) {
        const std::string limit_text = counts.substr(colon + 1);
        limit = std::stoull(limit_text, &parsed);
        QASCA_CHECK(parsed == limit_text.size())
            << "bad QASCA_FAILPOINTS limit in" << text;
      }
    }
    Arm(name, skip, limit);
    armed.push_back(name);
  };
  for (const char* p = spec;; ++p) {
    if (*p == ',' || *p == '\0') {
      arm_entry(entry);
      entry.clear();
      if (*p == '\0') break;
    } else {
      entry += *p;
    }
  }
  return armed;
}

}  // namespace qasca::util
