#include "simulation/serving_driver.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>

#include "platform/qasca_strategy.h"
#include "util/lock_ranks.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_annotations.h"

namespace qasca {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  hash ^= value;
  hash *= kFnvPrime;
  return hash;
}

/// SplitMix64 — the stateless mixer behind ServingAnswerFor: answers must
/// be a pure function of (app, worker, question), never of execution order.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// One app's turnstile plus the driver-side lane model: which workers hold
/// open HITs (mirroring the engine's lease table closely enough to decide
/// request-vs-complete) and the running decision hash. A thread may only
/// touch a lane while holding its turn and its lock; threads with later
/// app_seq values wait on the turnstile.
struct ServingLane {
  mutable util::Mutex turn_mu{util::lock_ranks::kServingLane};
  util::CondVar turn_cv;
  /// Next app_seq allowed to execute.
  uint32_t next_seq QASCA_GUARDED_BY(turn_mu) = 0;
  /// Open HITs as the driver last observed them. A lease the engine
  /// expired stays here until the worker's next completion attempt is
  /// rejected as late — the rejection is itself deterministic, so the
  /// model never diverges across interleavings.
  std::vector<std::vector<QuestionIndex>> open QASCA_GUARDED_BY(turn_mu);
  uint64_t decision_hash QASCA_GUARDED_BY(turn_mu) = kFnvOffset;
  int64_t assignments QASCA_GUARDED_BY(turn_mu) = 0;
  int64_t completions QASCA_GUARDED_BY(turn_mu) = 0;
  int64_t rejects QASCA_GUARDED_BY(turn_mu) = 0;
  int64_t leases_expired QASCA_GUARDED_BY(turn_mu) = 0;
  int64_t crash_recoveries QASCA_GUARDED_BY(turn_mu) = 0;
  int64_t batches QASCA_GUARDED_BY(turn_mu) = 0;
};

/// Status fold tags, so a rejected event perturbs the decision hash
/// differently from an accepted one.
constexpr uint64_t kTagAssign = 1;
constexpr uint64_t kTagComplete = 2;
constexpr uint64_t kTagTick = 3;
constexpr uint64_t kTagRecover = 4;
constexpr uint64_t kTagReject = 5;

void FoldQuestions(ServingLane& lane,
                   const std::vector<QuestionIndex>& questions)
    QASCA_REQUIRES(lane.turn_mu) {
  lane.decision_hash = FnvMix(lane.decision_hash, questions.size());
  for (QuestionIndex q : questions) {
    lane.decision_hash =
        FnvMix(lane.decision_hash, static_cast<uint64_t>(q) + 1);
  }
}

void ExecuteServe(AppManager& manager, const ServingWorkloadOptions& options,
                  const ServingEvent& event, ServingLane& lane)
    QASCA_REQUIRES(lane.turn_mu) {
  const size_t slot = static_cast<size_t>(event.worker);
  if (!lane.open[slot].empty()) {
    // Complete the worker's open HIT with pure-function answers.
    std::vector<LabelIndex> labels;
    labels.reserve(lane.open[slot].size());
    for (QuestionIndex q : lane.open[slot]) {
      labels.push_back(ServingAnswerFor(event.app, event.worker, q, options));
    }
    util::Status status =
        manager.SubmitHitCompletion(event.app, event.worker, labels);
    lane.decision_hash = FnvMix(lane.decision_hash, kTagComplete);
    lane.decision_hash = FnvMix(
        lane.decision_hash, static_cast<uint64_t>(event.worker));
    lane.decision_hash =
        FnvMix(lane.decision_hash, static_cast<uint64_t>(status.code()));
    if (status.ok()) {
      ++lane.completions;
    } else {
      // A lease the engine expired: the late rejection clears the stale
      // lane entry, mirroring the engine's expired_pending_ window.
      ++lane.rejects;
    }
    lane.open[slot].clear();
    return;
  }
  util::StatusOr<std::vector<QuestionIndex>> selected =
      manager.SubmitHitRequest(event.app, event.worker);
  if (selected.ok()) {
    lane.decision_hash = FnvMix(lane.decision_hash, kTagAssign);
    lane.decision_hash = FnvMix(
        lane.decision_hash, static_cast<uint64_t>(event.worker));
    FoldQuestions(lane, *selected);
    lane.open[slot] = std::move(*selected);
    ++lane.assignments;
  } else {
    lane.decision_hash = FnvMix(lane.decision_hash, kTagReject);
    lane.decision_hash = FnvMix(
        lane.decision_hash, static_cast<uint64_t>(selected.status().code()));
    ++lane.rejects;
  }
}

void ExecuteBatch(AppManager& manager, const ServingEvent& event,
                  ServingLane& lane) QASCA_REQUIRES(lane.turn_mu) {
  // Only workers without an open HIT participate; duplicates within the
  // batch are dropped. Both filters read lane state the turnstile already
  // serialises, so the filtered batch is interleaving-independent.
  std::vector<WorkerId> workers;
  for (WorkerId worker : event.batch) {
    const size_t slot = static_cast<size_t>(worker);
    if (!lane.open[slot].empty()) continue;
    if (std::find(workers.begin(), workers.end(), worker) != workers.end()) {
      continue;
    }
    workers.push_back(worker);
  }
  util::StatusOr<std::vector<util::StatusOr<std::vector<QuestionIndex>>>>
      results = manager.SubmitHitRequestBatch(event.app, workers);
  QASCA_CHECK(results.ok()) << results.status().ToString();
  ++lane.batches;
  for (size_t i = 0; i < workers.size(); ++i) {
    const util::StatusOr<std::vector<QuestionIndex>>& slot_result =
        (*results)[i];
    if (slot_result.ok()) {
      lane.decision_hash = FnvMix(lane.decision_hash, kTagAssign);
      lane.decision_hash =
          FnvMix(lane.decision_hash, static_cast<uint64_t>(workers[i]));
      FoldQuestions(lane, *slot_result);
      lane.open[static_cast<size_t>(workers[i])] = *slot_result;
      ++lane.assignments;
    } else {
      lane.decision_hash = FnvMix(lane.decision_hash, kTagReject);
      lane.decision_hash = FnvMix(
          lane.decision_hash,
          static_cast<uint64_t>(slot_result.status().code()));
      ++lane.rejects;
    }
  }
}

void ExecuteEvent(AppManager& manager, const ServingWorkloadOptions& options,
                  const ServingEvent& event, ServingLane& lane)
    QASCA_REQUIRES(lane.turn_mu) {
  switch (event.kind) {
    case ServingEvent::Kind::kServe:
      ExecuteServe(manager, options, event, lane);
      break;
    case ServingEvent::Kind::kBatch:
      ExecuteBatch(manager, event, lane);
      break;
    case ServingEvent::Kind::kTick: {
      util::StatusOr<int> expired =
          manager.AdvanceAppClock(event.app, event.ticks);
      QASCA_CHECK(expired.ok()) << expired.status().ToString();
      lane.decision_hash = FnvMix(lane.decision_hash, kTagTick);
      lane.decision_hash =
          FnvMix(lane.decision_hash, static_cast<uint64_t>(*expired));
      lane.leases_expired += *expired;
      break;
    }
    case ServingEvent::Kind::kCrashRecover: {
      util::Status status = manager.CrashAndRecoverApp(event.app);
      lane.decision_hash = FnvMix(lane.decision_hash, kTagRecover);
      lane.decision_hash =
          FnvMix(lane.decision_hash, static_cast<uint64_t>(status.code()));
      if (status.ok()) ++lane.crash_recoveries;
      break;
    }
  }
}

/// Claims events off the shared cursor and executes each behind its app's
/// turnstile. Claiming in global-schedule order means a lane's events are
/// claimed in app_seq order, so the earliest unfinished event of every
/// lane is always held by some thread — the turnstile waits cannot
/// deadlock.
void DrainEvents(AppManager& manager, const ServingWorkloadOptions& options,
                 const std::vector<ServingEvent>& events,
                 std::vector<std::unique_ptr<ServingLane>>& lanes,
                 std::atomic<size_t>& cursor) {
  for (;;) {
    const size_t index = cursor.fetch_add(1, std::memory_order_relaxed);
    if (index >= events.size()) break;
    const ServingEvent& event = events[index];
    ServingLane& lane = *lanes[static_cast<size_t>(event.app)];
    util::MutexLock lock(lane.turn_mu);
    while (lane.next_seq != event.app_seq) {
      lane.turn_cv.Wait(lane.turn_mu);
    }
    ExecuteEvent(manager, options, event, lane);
    ++lane.next_seq;
    lane.turn_cv.NotifyAll();
  }
}

}  // namespace

LabelIndex ServingAnswerFor(AppId app, WorkerId worker,
                            QuestionIndex question,
                            const ServingWorkloadOptions& options) {
  const LabelIndex truth =
      static_cast<LabelIndex>(question % options.num_labels);
  const uint64_t h = Mix(Mix(Mix(static_cast<uint64_t>(app) + 1) ^
                             (static_cast<uint64_t>(worker) + 1)) ^
                         (static_cast<uint64_t>(question) + 1));
  if (static_cast<int>(h % 100) < options.answer_accuracy_pct) {
    return truth;
  }
  return static_cast<LabelIndex>(h % static_cast<uint64_t>(
                                         options.num_labels));
}

ServingSchedule ServingSchedule::Generate(
    const ServingWorkloadOptions& options, uint64_t seed) {
  QASCA_CHECK_GT(options.apps, 0);
  QASCA_CHECK_GT(options.workers_per_app, 0);
  ServingSchedule schedule;
  schedule.apps_ = options.apps;
  // Per-app streams from per-app RNG streams, so adding an app never
  // perturbs the siblings' schedules.
  std::vector<ServingEvent> streams;
  streams.reserve(static_cast<size_t>(options.apps * options.events_per_app));
  std::vector<std::vector<ServingEvent>> per_app(
      static_cast<size_t>(options.apps));
  for (int app = 0; app < options.apps; ++app) {
    util::Rng rng(Mix(seed ^ (static_cast<uint64_t>(app) + 0x5eed)));
    auto& stream = per_app[static_cast<size_t>(app)];
    stream.reserve(static_cast<size_t>(options.events_per_app));
    for (int i = 0; i < options.events_per_app; ++i) {
      ServingEvent event;
      event.app = app;
      event.app_seq = static_cast<uint32_t>(i);
      const double u = rng.Uniform();
      if (options.crash_every > 0 && i > 0 &&
          i % options.crash_every == 0) {
        event.kind = ServingEvent::Kind::kCrashRecover;
      } else if (u < options.tick_fraction) {
        event.kind = ServingEvent::Kind::kTick;
        event.ticks = 1 + static_cast<uint64_t>(rng.UniformInt(3));
      } else if (u < options.tick_fraction + options.batch_fraction) {
        event.kind = ServingEvent::Kind::kBatch;
        event.batch.reserve(static_cast<size_t>(options.batch_size));
        for (int b = 0; b < options.batch_size; ++b) {
          event.batch.push_back(
              static_cast<WorkerId>(rng.UniformInt(options.workers_per_app)));
        }
      } else {
        event.kind = ServingEvent::Kind::kServe;
        event.worker =
            static_cast<WorkerId>(rng.UniformInt(options.workers_per_app));
      }
      stream.push_back(std::move(event));
    }
  }
  // Seeded interleave preserving per-app order: repeatedly pick a remaining
  // event uniformly across apps, weighted by how many each still has.
  util::Rng interleave(Mix(seed ^ 0x1eaf));
  std::vector<size_t> next(static_cast<size_t>(options.apps), 0);
  int remaining = options.apps * options.events_per_app;
  schedule.events_.reserve(static_cast<size_t>(remaining));
  while (remaining > 0) {
    int pick = interleave.UniformInt(remaining);
    for (int app = 0; app < options.apps; ++app) {
      const auto& stream = per_app[static_cast<size_t>(app)];
      const int left =
          static_cast<int>(stream.size() - next[static_cast<size_t>(app)]);
      if (pick < left) {
        schedule.events_.push_back(
            stream[next[static_cast<size_t>(app)]++]);
        break;
      }
      pick -= left;
    }
    --remaining;
  }
  return schedule;
}

util::Status BuildServingApps(AppManager& manager,
                              const ServingWorkloadOptions& options,
                              uint64_t seed) {
  for (int app = 0; app < options.apps; ++app) {
    AppConfig config;
    config.name = "serving_app_" + std::to_string(app);
    config.num_questions = options.num_questions;
    config.num_labels = options.num_labels;
    config.questions_per_hit = options.questions_per_hit;
    config.pay_per_hit = 1.0;
    config.budget = static_cast<double>(options.events_per_app);
    config.em_refresh_interval = options.em_refresh_interval;
    config.lease_timeout_ticks = options.lease_timeout_ticks;
    config.telemetry_enabled = options.telemetry;
    config.slo_p95_assign_ms = options.slo_p95_assign_ms;
    config.provenance_enabled = options.provenance;
    if (options.provenance) {
      // Large enough that the ring never wraps under the stress loads the
      // conformance suite runs (provenance count == assignments is one of
      // its invariants).
      config.provenance_capacity =
          options.events_per_app * (1 + options.batch_size);
    }
    if (!options.persistence_dir.empty()) {
      // AppManager appends ".app<id>" — every app still gets its own file.
      config.persistence_path = options.persistence_dir + "/journal";
    }
    AppManager::AppOptions app_options;
    app_options.config = std::move(config);
    const QwMode qw_mode = app_options.config.qw_mode;
    app_options.strategy_factory = [qw_mode] {
      return std::make_unique<QascaStrategy>(qw_mode);
    };
    app_options.seed = Mix(seed ^ (static_cast<uint64_t>(app) + 0xa550));
    util::StatusOr<AppId> id = manager.RegisterApp(std::move(app_options));
    QASCA_RETURN_IF_ERROR(id.status());
    QASCA_CHECK_EQ(*id, app);
  }
  return util::Status::Ok();
}

ServingRunResult RunServingSchedule(AppManager& manager,
                                    const ServingSchedule& schedule,
                                    const ServingWorkloadOptions& options,
                                    int num_threads) {
  QASCA_CHECK_GE(num_threads, 1);
  std::vector<std::unique_ptr<ServingLane>> lanes;
  lanes.reserve(static_cast<size_t>(schedule.apps()));
  for (int app = 0; app < schedule.apps(); ++app) {
    auto lane = std::make_unique<ServingLane>();
    {
      util::MutexLock lock(lane->turn_mu);
      lane->open.resize(static_cast<size_t>(options.workers_per_app));
    }
    lanes.push_back(std::move(lane));
  }
  std::atomic<size_t> cursor{0};
  util::Stopwatch stopwatch;
  if (num_threads == 1) {
    DrainEvents(manager, options, schedule.events(), lanes, cursor);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&] {
        DrainEvents(manager, options, schedule.events(), lanes, cursor);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  ServingRunResult result;
  result.elapsed_seconds = stopwatch.ElapsedSeconds();
  for (int app = 0; app < schedule.apps(); ++app) {
    ServingLane& lane = *lanes[static_cast<size_t>(app)];
    util::MutexLock lock(lane.turn_mu);
    result.decision_hashes.push_back(lane.decision_hash);
    result.assignments += lane.assignments;
    result.completions += lane.completions;
    result.rejects += lane.rejects;
    result.leases_expired += lane.leases_expired;
    result.crash_recoveries += lane.crash_recoveries;
    result.batches += lane.batches;
    util::StatusOr<uint64_t> fingerprint = manager.AppStateFingerprint(app);
    QASCA_CHECK(fingerprint.ok()) << fingerprint.status().ToString();
    result.fingerprints.push_back(*fingerprint);
  }
  return result;
}

}  // namespace qasca
