#include "platform/engine.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>
#include <utility>

#include "core/kernels/kernels.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/telemetry_names.h"

namespace {

/// Deadline value of a lease that never expires (lease_timeout_ticks == 0).
constexpr uint64_t kLeaseNever = std::numeric_limits<uint64_t>::max();

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  hash ^= value;
  hash *= kFnvPrime;
  return hash;
}

uint64_t BitsOf(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

namespace qasca {

TaskAssignmentEngine::TaskAssignmentEngine(
    AppConfig config, std::unique_ptr<AssignmentStrategy> strategy,
    uint64_t seed)
    : config_(std::move(config)),
      // The flight recorder and the SLO tracker ride the span/instrument
      // machinery, so either one needs the registry live even when plain
      // telemetry is off. Decisions are byte-identical either way
      // (DeterminismTest.TracingNeverChangesDecisions).
      telemetry_(config_.telemetry_enabled || config_.flight_recorder_enabled ||
                 config_.slo_p95_assign_ms > 0.0) {
  util::Status status = config_.Validate();
  QASCA_CHECK(status.ok()) << status.ToString();
  config_.em.worker_kind = config_.worker_kind;
  if (config_.flight_recorder_enabled) {
    flight_recorder_ =
        std::make_unique<util::FlightRecorder>(config_.flight_recorder_capacity);
    // Attached before any worker thread exists — the registry's recorder
    // pointer is written exactly once, here.
    telemetry_.AttachFlightRecorder(flight_recorder_.get());
  }
  if (config_.provenance_enabled) {
    provenance_ = std::make_unique<ProvenanceLog>(config_.provenance_capacity);
  }
  if (config_.slo_p95_assign_ms > 0.0) {
    util::SloTracker::Instruments slo_instruments;
    slo_instruments.window_name = util::tnames::kWindowAssignHit;
    slo_instruments.over_target_name = util::tnames::kSloAssignOverTarget;
    slo_instruments.breaches_name = util::tnames::kSloAssignP95Breaches;
    slo_instruments.window_p95_name = util::tnames::kSloAssignWindowP95Ms;
    util::SloTracker::Options slo_options;
    slo_options.target_p95_seconds = config_.slo_p95_assign_ms * 1e-3;
    slo_options.window = config_.latency_window_samples;
    assign_slo_ = std::make_unique<util::SloTracker>(
        &telemetry_, slo_instruments, slo_options);
  }
  if (!config_.persistence_path.empty()) {
    journal_ = std::make_unique<LifecycleJournal>(config_.persistence_path);
    journal_->AttachTelemetry(&telemetry_);
  }
  // Arms any fault plan in the QASCA_FAILPOINTS environment variable; a
  // no-op when unset or when fail points are compiled out.
  util::FailPoints::Global().ArmFromEnv();
  // The decision core: owns the database, the strategy, the RNG stream and
  // the EM refresh machinery. Constructed after the registry so its
  // instruments resolve against the live/disabled state decided above.
  core_ = std::make_unique<AssignmentCore>(&config_, std::move(strategy),
                                           seed, &telemetry_);
  instruments_.hits_assigned =
      telemetry_.GetCounter(util::tnames::kHitsAssigned);
  instruments_.hits_completed =
      telemetry_.GetCounter(util::tnames::kHitsCompleted);
  instruments_.lease_expired =
      telemetry_.GetCounter(util::tnames::kHitLeaseExpired);
  instruments_.questions_requeued =
      telemetry_.GetCounter(util::tnames::kHitQuestionsRequeued);
  instruments_.duplicate_dropped =
      telemetry_.GetCounter(util::tnames::kHitDuplicateDropped);
  instruments_.late_completion_rejected =
      telemetry_.GetCounter(util::tnames::kHitLateCompletionRejected);
  instruments_.journal_events_replayed =
      telemetry_.GetCounter(util::tnames::kJournalEventsReplayed);
  instruments_.batches_served =
      telemetry_.GetCounter(util::tnames::kServingBatches);
  instruments_.batch_requests =
      telemetry_.GetCounter(util::tnames::kServingBatchRequests);
  instruments_.open_hits = telemetry_.GetGauge(util::tnames::kOpenHits);
  instruments_.remaining_hits =
      telemetry_.GetGauge(util::tnames::kRemainingHits);
  // Which SIMD tier the runtime dispatcher selected (cpuid-detected, or the
  // QASCA_KERNEL_ISA override) — exported as the numeric kernels::Isa value.
  // The span makes the one-time dispatch resolution visible in traces.
  {
    util::Span isa_span(&telemetry_, util::tnames::kSpanKernelDispatch);
    telemetry_.GetGauge(util::tnames::kKernelIsa)
        ->Set(static_cast<double>(static_cast<int>(kernels::ActiveIsa())));
  }
}

util::StatusOr<std::vector<QuestionIndex>> TaskAssignmentEngine::RequestHit(
    WorkerId worker) {
  if (BudgetExhausted()) {
    return util::Status::ResourceExhausted("budget spent: no HITs left");
  }
  if (open_hits_.contains(worker)) {
    return util::Status::FailedPrecondition(
        "worker already holds an open HIT");
  }
  // Request-scoped trace id: stamped onto every span event this request
  // records and onto its provenance record. Advances unconditionally so
  // observability flags never shift the ids a later request would get.
  const uint64_t trace_id = next_trace_id_++;
  util::TraceScope trace_scope(trace_id);
  // Root span of the HIT-request workflow; every stage below (estimate_qw,
  // topk_scan / fscore_online -> dinkelbach_inner) nests inside it.
  util::Span span(&telemetry_, util::tnames::kSpanAssignHit);

  // Decision provenance: the strategy fills the selection scores and the
  // core fills the decision-input fields; the identity fields are filled
  // below once the assignment is durable.
  DecisionProvenance provenance_record;
  util::Stopwatch stopwatch;
  util::StatusOr<AssignmentCore::Decision> decision = core_->Decide(
      worker, provenance_ != nullptr ? &provenance_record : nullptr);
  if (!decision.ok()) {
    // A rejected request (short candidate set) never reached the strategy;
    // it does not contribute an assignment-latency sample.
    return decision.status();
  }
  last_assignment_seconds_ = stopwatch.ElapsedSeconds();
  max_assignment_seconds_ =
      std::max(max_assignment_seconds_, last_assignment_seconds_);
  if (assign_slo_ != nullptr) {
    assign_slo_->RecordSeconds(last_assignment_seconds_);
  }
  std::vector<QuestionIndex> selected = std::move(decision->questions);

  // Write-ahead: the event must be durable before any engine state mutates,
  // so a failed append leaves this HIT unassigned everywhere — recovery and
  // the live engine agree the event never happened.
  if (journal_ != nullptr && !replaying_) {
    QASCA_RETURN_IF_ERROR(journal_->AppendAssign(worker, selected));
  }
  core_->CommitAssignment(worker, selected);
  trace_.RecordAssignment(worker, selected);
  OpenHit hit;
  hit.hit_id = next_hit_id_++;
  hit.deadline = config_.lease_timeout_ticks == 0
                     ? kLeaseNever
                     : now_ticks_ + config_.lease_timeout_ticks;
  hit.questions = selected;
  const uint64_t hit_id = hit.hit_id;
  const uint64_t lease_deadline = hit.deadline;
  open_hits_.emplace(worker, std::move(hit));
  // A new HIT supersedes any earlier expired lease: the late-completion
  // rejection window for this worker closes here.
  expired_pending_.erase(worker);
  ++assigned_hits_;
  instruments_.hits_assigned->Add(1);
  instruments_.open_hits->Set(static_cast<double>(open_hits_.size()));
  instruments_.remaining_hits->Set(static_cast<double>(remaining_hits()));
  if (provenance_ != nullptr) {
    // Appended after the assignment is durable, and during replay too:
    // provenance is re-derivable audit state, rebuilt by recovery exactly
    // like the event trace, so counts stay consistent across crashes.
    provenance_record.trace_id = trace_id;
    provenance_record.hit_id = hit_id;
    provenance_record.worker = worker;
    provenance_record.questions = selected;
    provenance_record.journal_seq =
        journal_ == nullptr ? 0
        : replaying_       ? replay_journal_seq_
                           : journal_->events().size() - 1;
    provenance_record.now_ticks = now_ticks_;
    provenance_record.lease_deadline = lease_deadline;
    provenance_->Record(std::move(provenance_record));
  }
  return selected;
}

std::vector<util::StatusOr<std::vector<QuestionIndex>>>
TaskAssignmentEngine::ServeRequestBatch(const std::vector<WorkerId>& workers) {
  // One root span and one shared-state warm-up for the whole batch: the
  // cached typical-worker model (and with it the strategies' Qc view) is
  // materialised once here instead of inside the first request's span.
  util::Span span(&telemetry_, util::tnames::kSpanServeBatch);
  core_->WarmSharedState();
  std::vector<util::StatusOr<std::vector<QuestionIndex>>> results;
  results.reserve(workers.size());
  for (WorkerId worker : workers) {
    results.push_back(RequestHit(worker));
  }
  instruments_.batches_served->Add(1);
  instruments_.batch_requests->Add(static_cast<int64_t>(workers.size()));
  return results;
}

util::Status TaskAssignmentEngine::CompleteHit(
    WorkerId worker, const std::vector<LabelIndex>& labels) {
  auto it = open_hits_.find(worker);
  if (it == open_hits_.end()) {
    // Distinguish the platform failure modes from a plain unknown worker.
    // A redelivered completion callback matches the worker's most recent
    // completed HIT by answer-set hash and is dropped without touching D
    // or EM; a completion arriving after the lease timed out is rejected
    // as late. Both are recoverable platform events, not API misuse.
    auto completed = last_completion_.find(worker);
    if (completed != last_completion_.end() &&
        completed->second.answers_hash == HashLabels(labels)) {
      ++duplicates_dropped_;
      instruments_.duplicate_dropped->Add(1);
      return util::Status::AlreadyExists(
          "duplicate completion of HIT " +
          std::to_string(completed->second.hit_id) + " dropped");
    }
    if (expired_pending_.contains(worker)) {
      ++late_completions_rejected_;
      instruments_.late_completion_rejected->Add(1);
      return util::Status::FailedPrecondition(
          "lease expired before completion; answers rejected");
    }
    return util::Status::NotFound("worker has no open HIT");
  }
  const std::vector<QuestionIndex>& questions = it->second.questions;
  if (labels.size() != questions.size()) {
    return util::Status::InvalidArgument(
        "answer count does not match HIT size");
  }
  for (LabelIndex label : labels) {
    if (label < 0 || label >= config_.num_labels) {
      return util::Status::InvalidArgument("answer label out of range");
    }
  }
  // Fresh trace id for the completion workflow, advanced unconditionally so
  // observability flags can never shift the id sequence (and with it any
  // trace-correlated output) between configurations.
  const uint64_t trace_id = next_trace_id_++;
  util::TraceScope trace_scope(trace_id);
  // Root span of the HIT-completion workflow (steps A-C); em_full_refit /
  // incremental_refresh nest inside it.
  util::Span span(&telemetry_, util::tnames::kSpanCompleteHit);
  // Write-ahead, as in RequestHit: fail before touching D or the lease so a
  // completion the journal lost is a completion that never happened.
  if (journal_ != nullptr && !replaying_) {
    QASCA_RETURN_IF_ERROR(journal_->AppendComplete(worker, labels));
  }
  std::vector<QuestionIndex> touched = it->second.questions;
  last_completion_[worker] =
      CompletedHit{it->second.hit_id, HashLabels(labels)};
  trace_.RecordCompletion(worker, touched, labels);
  open_hits_.erase(it);
  ++completed_hits_;
  instruments_.hits_completed->Add(1);
  instruments_.open_hits->Set(static_cast<double>(open_hits_.size()));
  // Steps A-C run in the core: append the answers to D, then refresh Qc
  // (incremental row re-derivation or a scheduled full EM refit).
  core_->ApplyCompletion(worker, touched, labels);
  return util::Status::Ok();
}

int TaskAssignmentEngine::Tick(uint64_t ticks) {
  QASCA_CHECK_GT(ticks, 0u);
  now_ticks_ += ticks;
  // Tick has no error channel, and a clock advance the journal lost would
  // recover to different lease deadlines — divergence, the one thing the
  // journal must never allow. Fatal, so the operator restarts into Recover.
  if (journal_ != nullptr && !replaying_) {
    QASCA_CHECK_OK(journal_->AppendTick(ticks));
  }
  // Collect the expired workers with an explicit iterator walk and process
  // them in ascending-id order: expiry requeues questions and is replayed
  // during recovery, so its effects must not depend on unordered_map
  // bucket order (determinism pass, tools/analyze.py).
  std::vector<WorkerId> expired;
  for (auto it = open_hits_.begin(); it != open_hits_.end(); ++it) {
    if (it->second.deadline <= now_ticks_) expired.push_back(it->first);
  }
  std::sort(expired.begin(), expired.end());
  for (WorkerId worker : expired) {
    const OpenHit& hit = open_hits_.at(worker);
    core_->ReleaseAssignment(worker, hit.questions);
    trace_.RecordLeaseExpiry(worker, hit.questions);
    questions_requeued_ += static_cast<int>(hit.questions.size());
    instruments_.questions_requeued->Add(
        static_cast<int64_t>(hit.questions.size()));
    open_hits_.erase(worker);
    expired_pending_.insert(worker);
    // Refund the budget: the HIT was never completed, so it is never paid
    // for. This keeps assigned_hits == completed_hits + open_hit_count.
    --assigned_hits_;
    ++leases_expired_;
    instruments_.lease_expired->Add(1);
  }
  if (!expired.empty()) {
    instruments_.open_hits->Set(static_cast<double>(open_hits_.size()));
    instruments_.remaining_hits->Set(static_cast<double>(remaining_hits()));
  }
  return static_cast<int>(expired.size());
}

util::Status TaskAssignmentEngine::Recover() {
  if (journal_ == nullptr) {
    return util::Status::FailedPrecondition(
        "recovery requires AppConfig::persistence_path");
  }
  QASCA_CHECK_EQ(assigned_hits_, 0)
      << "Recover must run on a freshly constructed engine";
  QASCA_CHECK_EQ(trace_.size(), 0);
  replaying_ = true;
  replay_journal_seq_ = 0;
  for (const LifecycleJournal::Event& event : journal_->events()) {
    switch (event.kind) {
      case LifecycleJournal::Event::Kind::kAssign: {
        util::StatusOr<std::vector<QuestionIndex>> selected =
            RequestHit(event.worker);
        if (!selected.ok()) {
          replaying_ = false;
          return selected.status();
        }
        if (*selected != event.questions) {
          replaying_ = false;
          return util::Status::Internal(
              "journal replay diverged from the strategy's selection — the "
              "journal was not written by this (config, seed)");
        }
        break;
      }
      case LifecycleJournal::Event::Kind::kComplete: {
        util::Status status = CompleteHit(event.worker, event.labels);
        if (!status.ok()) {
          replaying_ = false;
          return status;
        }
        break;
      }
      case LifecycleJournal::Event::Kind::kTick:
        Tick(event.ticks);
        break;
    }
    instruments_.journal_events_replayed->Add(1);
    ++replay_journal_seq_;
  }
  replaying_ = false;
  return util::Status::Ok();
}

uint64_t TaskAssignmentEngine::HashLabels(
    const std::vector<LabelIndex>& labels) {
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, labels.size());
  for (LabelIndex label : labels) {
    hash = FnvMix(hash, static_cast<uint64_t>(label) + 1);
  }
  return hash;
}

uint64_t TaskAssignmentEngine::StateFingerprint() const {
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, static_cast<uint64_t>(assigned_hits_));
  hash = FnvMix(hash, static_cast<uint64_t>(completed_hits_));
  hash = FnvMix(hash, now_ticks_);
  hash = FnvMix(hash, next_hit_id_);
  // Open leases, folded in ascending worker order (determinism pass: the
  // fingerprint must not depend on bucket layout).
  std::vector<WorkerId> workers;
  for (auto it = open_hits_.begin(); it != open_hits_.end(); ++it) {
    workers.push_back(it->first);
  }
  std::sort(workers.begin(), workers.end());
  for (WorkerId worker : workers) {
    const OpenHit& hit = open_hits_.at(worker);
    hash = FnvMix(hash, static_cast<uint64_t>(worker));
    hash = FnvMix(hash, hit.hit_id);
    hash = FnvMix(hash, hit.deadline);
    for (QuestionIndex q : hit.questions) {
      hash = FnvMix(hash, static_cast<uint64_t>(q) + 1);
    }
  }
  // The answer set D, in per-question arrival order.
  const Database& db = core_->database();
  for (int q = 0; q < db.num_questions(); ++q) {
    const auto& answers = db.answers()[static_cast<size_t>(q)];
    hash = FnvMix(hash, answers.size());
    for (const Answer& answer : answers) {
      hash = FnvMix(hash, static_cast<uint64_t>(answer.worker));
      hash = FnvMix(hash, static_cast<uint64_t>(answer.label) + 1);
    }
  }
  const DistributionMatrix& qc = db.current();
  for (int i = 0; i < qc.num_questions(); ++i) {
    for (int j = 0; j < qc.num_labels(); ++j) {
      hash = FnvMix(hash, BitsOf(qc.At(i, j)));
    }
  }
  for (LabelIndex r : CurrentResults()) {
    hash = FnvMix(hash, static_cast<uint64_t>(r) + 1);
  }
  return hash;
}

}  // namespace qasca
