#ifndef QASCA_SIMULATION_DATASET_H_
#define QASCA_SIMULATION_DATASET_H_

#include <string>
#include <vector>

#include "core/metrics/metric.h"
#include "core/types.h"
#include "platform/app_config.h"
#include "simulation/simulated_worker.h"
#include "util/rng.h"

namespace qasca {

/// Full recipe for one of the paper's crowdsourcing applications (Table 1
/// plus Appendix J): question pool shape, ground-truth prior, evaluation
/// metric, HIT sizing, redundancy, and the worker-pool structure that gives
/// the application its characteristic confusion behaviour.
///
/// The paper's real corpora (IMDB posters, Twitter sentiment, Abt-Buy
/// product pairs, Fortune-500 logos) are replaced by synthetic generators
/// that preserve what the algorithms actually consume — see DESIGN.md §2.
struct ApplicationSpec {
  std::string name;
  int num_questions = 1000;
  int num_labels = 2;
  /// Ground-truth labels are drawn i.i.d. from this distribution.
  std::vector<double> truth_prior;
  MetricSpec metric = MetricSpec::Accuracy();
  /// Questions per HIT (the paper's k).
  int questions_per_hit = 4;
  /// Average answers per question (the paper's z); total HITs
  /// m = n * z / k.
  int answers_per_question = 3;
  WorkerPoolSpec workers;
  /// Question-difficulty mix: most questions are easy (settled by 1-2
  /// competent answers), a sizeable minority is hard but resolvable with
  /// extra answers, and a small tail is inherently ambiguous (answers are
  /// near-random no matter the skill). This trimodal spread reproduces the
  /// heterogeneity the paper's introduction motivates — adaptive systems
  /// win by moving budget from the easy mode to the hard mode — and the
  /// ExpLoss-vs-MaxMargin behaviour of Section 6.2.3 (ambiguous questions
  /// keep a high expected loss forever).
  double easy_difficulty_max = 0.10;
  double hard_fraction = 0.30;
  double hard_difficulty_min = 0.30;
  double hard_difficulty_max = 0.55;
  double ambiguous_fraction = 0.08;
  double ambiguous_difficulty_min = 0.80;
  /// Worker-model parameterisation the platform fits (CM everywhere except
  /// CompanyLogo, where the paper reduces to a target/non-target view and a
  /// full 214x214 CM would be hopelessly under-determined).
  WorkerModel::Kind worker_kind = WorkerModel::Kind::kConfusionMatrix;

  /// Number of HITs the budget affords: m = n * z / k.
  int TotalHits() const {
    return num_questions * answers_per_question / questions_per_hit;
  }
};

/// FS — Films Posters: which of two films was published earlier.
/// 1000 two-label questions, Accuracy (Table 1).
ApplicationSpec FilmPostersApp();

/// SA — Twitter sentiment w.r.t. a company: positive / neutral / negative.
/// 1000 three-label questions, Accuracy; mislabelling into the *adjacent*
/// sentiment is more likely (Section 6.2.2's CM-vs-WP observation).
ApplicationSpec SentimentAnalysisApp();

/// ER — product-pair entity resolution: equal / non-equal. 2000 questions,
/// balanced F-score on "equal" (alpha = 0.5); identifying "non-equal" is
/// easier than "equal" (asymmetric per-label difficulty, Section 6.2.2).
ApplicationSpec EntityResolutionApp();

/// PSA — positive-sentiment picking with high confidence: positive /
/// non-positive, F-score with alpha = 0.75 (Precision-heavy).
ApplicationSpec PositiveSentimentApp();

/// NSA — negative-comment collection: negative / non-negative, F-score with
/// alpha = 0.25 (Recall-heavy).
ApplicationSpec NegativeSentimentApp();

/// CompanyLogo (Appendix J): 500 questions, 214 country labels, k = 5,
/// F-score on "USA" (alpha = 0.5) with 128/500 true targets.
ApplicationSpec CompanyLogoApp();

/// The five Table 1 applications, in paper order (FS, SA, ER, PSA, NSA).
std::vector<ApplicationSpec> PaperApplications();

/// Draws an i.i.d. ground-truth vector from the spec's prior.
GroundTruthVector GenerateGroundTruth(const ApplicationSpec& spec,
                                      util::Rng& rng);

/// Draws each question's inherent difficulty (see ambiguous_fraction et
/// al.); values in [0, 1] feed SimulatedWorker::AnswerQuestion.
std::vector<double> GenerateQuestionDifficulty(const ApplicationSpec& spec,
                                               util::Rng& rng);

/// Translates a spec into the engine-facing configuration, with the
/// paper's AMT-style economics ($0.12 for a 6-system HIT => $0.02 per
/// system share) and the budget that affords exactly TotalHits() HITs.
AppConfig MakeAppConfig(const ApplicationSpec& spec);

}  // namespace qasca

#endif  // QASCA_SIMULATION_DATASET_H_
