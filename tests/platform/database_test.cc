#include "platform/database.h"

#include <gtest/gtest.h>

namespace qasca {
namespace {

TEST(DatabaseTest, FreshDatabaseHasAllCandidates) {
  Database db(5, 2);
  std::vector<QuestionIndex> candidates = db.CandidatesFor(7);
  EXPECT_EQ(candidates, (std::vector<QuestionIndex>{0, 1, 2, 3, 4}));
}

TEST(DatabaseTest, AssignedQuestionsLeaveCandidateSet) {
  Database db(5, 2);
  db.MarkAssigned(1, {0, 3});
  EXPECT_EQ(db.CandidatesFor(1), (std::vector<QuestionIndex>{1, 2, 4}));
  // Other workers unaffected.
  EXPECT_EQ(db.CandidatesFor(2).size(), 5u);
}

TEST(DatabaseTest, InitialDistributionIsUniform) {
  Database db(3, 4);
  EXPECT_DOUBLE_EQ(db.current().At(0, 0), 0.25);
  EXPECT_TRUE(db.current().IsNormalized());
}

TEST(DatabaseTest, RecordAnswerAppendsToAnswerSet) {
  Database db(3, 2);
  db.RecordAnswer(1, 9, 0);
  db.RecordAnswer(1, 8, 1);
  EXPECT_EQ(db.AnswerCount(1), 2);
  EXPECT_EQ(db.AnswerCount(0), 0);
  EXPECT_EQ(db.answers()[1][0], (Answer{9, 0}));
  EXPECT_EQ(db.answers()[1][1], (Answer{8, 1}));
}

TEST(DatabaseTest, SetParametersRefreshesCurrent) {
  Database db(2, 2);
  EmResult parameters;
  parameters.prior = {0.5, 0.5};
  parameters.posterior = DistributionMatrix(2, 2);
  parameters.posterior.SetRow(0, std::vector<double>{0.9, 0.1});
  db.SetParameters(parameters);
  EXPECT_DOUBLE_EQ(db.current().At(0, 0), 0.9);
}

TEST(DatabaseDeathTest, DoubleAssignmentAborts) {
  Database db(5, 2);
  db.MarkAssigned(1, {0});
  EXPECT_DEATH(db.MarkAssigned(1, {0}), "assigned twice");
}

TEST(DatabaseDeathTest, OutOfRangeAnswerAborts) {
  Database db(2, 2);
  EXPECT_DEATH(db.RecordAnswer(5, 0, 0), "Check failed");
  EXPECT_DEATH(db.RecordAnswer(0, 0, 2), "Check failed");
}

}  // namespace
}  // namespace qasca
