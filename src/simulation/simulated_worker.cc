#include "simulation/simulated_worker.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace qasca {

LabelIndex SimulatedWorker::AnswerQuestion(LabelIndex truth, util::Rng& rng,
                                           double difficulty) const {
  QASCA_CHECK_GE(difficulty, 0.0);
  QASCA_CHECK_LE(difficulty, 1.0);
  const int num_labels = latent.num_labels();
  if (difficulty > 0.0 && rng.Uniform() < difficulty) {
    return rng.UniformInt(num_labels);
  }
  std::vector<double> row(num_labels);
  for (int answered = 0; answered < num_labels; ++answered) {
    row[answered] = latent.AnswerProbability(answered, truth);
  }
  return rng.SampleWeighted(row);
}

std::vector<SimulatedWorker> GenerateWorkerPool(const WorkerPoolSpec& spec,
                                                util::Rng& rng) {
  QASCA_CHECK_GT(spec.num_workers, 0);
  QASCA_CHECK_GT(spec.num_labels, 1);
  QASCA_CHECK(spec.label_difficulty.empty() ||
              static_cast<int>(spec.label_difficulty.size()) ==
                  spec.num_labels);
  QASCA_CHECK_GE(spec.adjacent_confusion_bias, 0.0);
  QASCA_CHECK_LT(spec.adjacent_confusion_bias, 1.0);

  const int num_labels = spec.num_labels;
  std::vector<SimulatedWorker> pool;
  pool.reserve(spec.num_workers);
  for (int w = 0; w < spec.num_workers; ++w) {
    if (rng.Uniform() < spec.spammer_fraction) {
      // Spammer: every row of the CM is the same answer distribution —
      // uniform clicking blended with a random favourite label, so the
      // answer is independent of the question's true label.
      int favourite = rng.UniformInt(num_labels);
      double bias = rng.Uniform(0.0, 0.5);
      std::vector<double> cm(static_cast<size_t>(num_labels) * num_labels);
      for (int truth = 0; truth < num_labels; ++truth) {
        for (int answered = 0; answered < num_labels; ++answered) {
          double p = (1.0 - bias) / num_labels +
                     (answered == favourite ? bias : 0.0);
          cm[static_cast<size_t>(truth) * num_labels + answered] = p;
        }
      }
      pool.push_back(
          SimulatedWorker{w, WorkerModel::Cm(std::move(cm), num_labels)});
      continue;
    }
    double base =
        std::clamp(rng.Gaussian(spec.mean_accuracy, spec.accuracy_stddev),
                   spec.min_accuracy, spec.max_accuracy);
    std::vector<double> cm(static_cast<size_t>(num_labels) * num_labels);
    for (int truth = 0; truth < num_labels; ++truth) {
      double offset = spec.label_difficulty.empty()
                          ? 0.0
                          : spec.label_difficulty[truth];
      if (spec.label_skill_stddev > 0.0) {
        offset += rng.Gaussian(0.0, spec.label_skill_stddev);
      }
      double diagonal =
          std::clamp(base + offset, spec.min_accuracy, spec.max_accuracy);
      double error_mass = 1.0 - diagonal;

      // Spread the error mass over the other labels, optionally biased
      // toward adjacent label indices.
      double weight_total = 0.0;
      std::vector<double> weights(num_labels, 0.0);
      for (int answered = 0; answered < num_labels; ++answered) {
        if (answered == truth) continue;
        double weight = 1.0 - spec.adjacent_confusion_bias;
        if (std::abs(answered - truth) == 1) {
          weight += spec.adjacent_confusion_bias * (num_labels - 1);
        }
        weights[answered] = weight;
        weight_total += weight;
      }
      for (int answered = 0; answered < num_labels; ++answered) {
        cm[static_cast<size_t>(truth) * num_labels + answered] =
            answered == truth
                ? diagonal
                : error_mass * weights[answered] / weight_total;
      }
    }
    pool.push_back(
        SimulatedWorker{w, WorkerModel::Cm(std::move(cm), num_labels)});
  }
  return pool;
}

}  // namespace qasca
