#ifndef QASCA_UTIL_MUTEX_H_
#define QASCA_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/logging.h"
#include "util/thread_annotations.h"

/// QASCA_MUTEX_RANK_CHECKS gates the dynamic lock-rank check: every ranked
/// Mutex must be acquired in strictly increasing rank order per thread,
/// mirroring the static total order the analyzer's `lock-order` pass emits
/// into tools/analyze/lock_order.json (the ranks themselves live in
/// util/lock_ranks.h). Follows QASCA_ENABLE_DCHECKS by default, so the
/// sanitizer presets enforce the ordering dynamically while Release builds
/// pay nothing — when off, the rank field is compiled out entirely and
/// sizeof(Mutex) == sizeof(std::mutex) still holds.
#ifndef QASCA_MUTEX_RANK_CHECKS
#define QASCA_MUTEX_RANK_CHECKS QASCA_ENABLE_DCHECKS
#endif

namespace qasca::util {

class CondVar;

#if QASCA_MUTEX_RANK_CHECKS
namespace internal {
/// Per-thread stack of the ranks currently held, fixed capacity so the
/// check allocates nothing. Depth 16 is far beyond any real nesting —
/// the analyzer's lock-order graph for this tree is two levels deep.
struct HeldRanks {
  static constexpr int kMaxDepth = 16;
  int ranks[kMaxDepth];
  int depth = 0;
};

inline HeldRanks& ThreadHeldRanks() {
  thread_local HeldRanks held;
  return held;
}
}  // namespace internal
#endif

/// std::mutex wrapper annotated as a Clang thread-safety capability, so
/// QASCA_GUARDED_BY(mutex_) members and QASCA_REQUIRES(mutex_) functions
/// are checked at compile time under the `analyze` preset
/// (-Wthread-safety -Werror=thread-safety). libstdc++'s std::mutex carries
/// no capability attributes, which is why the project bans raw std::mutex
/// members outside this header (tools/analyze.py lock-annotations pass)
/// and routes every lock through this type.
///
/// Same cost as std::mutex in Release: every method is an inline forward,
/// and the optional lock rank (see QASCA_MUTEX_RANK_CHECKS above) only
/// exists in DCHECK builds.
class QASCA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Ranked mutex: in DCHECK builds, acquiring this mutex while holding
  /// one of equal or higher rank aborts with a diagnostic pointing at
  /// tools/analyze/lock_order.json. Ranks come from util/lock_ranks.h.
#if QASCA_MUTEX_RANK_CHECKS
  explicit Mutex(int rank) : rank_(rank) {}
#else
  explicit Mutex(int /*rank*/) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QASCA_ACQUIRE() {
    CheckRankBeforeLock();
    mu_.lock();
    PushRank();
  }
  void Unlock() QASCA_RELEASE() {
    PopRank();
    mu_.unlock();
  }
  bool TryLock() QASCA_TRY_ACQUIRE(true) {
    // TryLock never blocks, so it cannot deadlock and skips the ordering
    // check; a successful acquisition still joins the held stack so later
    // blocking Lock() calls see it.
    const bool acquired = mu_.try_lock();
    if (acquired) PushRank();
    return acquired;
  }

 private:
#if QASCA_MUTEX_RANK_CHECKS
  void CheckRankBeforeLock() const {
    if (rank_ < 0) return;  // unranked mutexes do not participate
    const internal::HeldRanks& held = internal::ThreadHeldRanks();
    if (held.depth > 0) {
      QASCA_CHECK(held.ranks[held.depth - 1] < rank_)
          << "lock-rank order violation: acquiring rank " << rank_
          << " while holding rank " << held.ranks[held.depth - 1]
          << " — ranked mutexes must be acquired in strictly increasing "
             "order (the ranking is tools/analyze/lock_order.json; "
             "regenerate with tools/analyze.py --write-lock-order)";
    }
  }
  void PushRank() {
    if (rank_ < 0) return;
    internal::HeldRanks& held = internal::ThreadHeldRanks();
    QASCA_CHECK(held.depth < internal::HeldRanks::kMaxDepth)
        << "lock-rank stack overflow (" << internal::HeldRanks::kMaxDepth
        << " ranked locks held by one thread)";
    held.ranks[held.depth++] = rank_;
  }
  void PopRank() {
    if (rank_ < 0) return;
    internal::HeldRanks& held = internal::ThreadHeldRanks();
    // Unlock order may legally differ from reverse-acquisition order
    // (e.g. std::adopt_lock dances), so remove the newest matching rank
    // rather than asserting LIFO.
    for (int i = held.depth - 1; i >= 0; --i) {
      if (held.ranks[i] == rank_) {
        for (int j = i; j + 1 < held.depth; ++j) {
          held.ranks[j] = held.ranks[j + 1];
        }
        --held.depth;
        return;
      }
    }
  }
  const int rank_ = -1;
#else
  void CheckRankBeforeLock() const {}
  void PushRank() {}
  void PopRank() {}
#endif

  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex (scoped capability). Prefer this over manual
/// Lock/Unlock pairs; the analysis then proves the lock is held for the
/// full scope and released on every path.
class QASCA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QASCA_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() QASCA_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with util::Mutex. Wait() must be called with
/// the mutex held (enforced by QASCA_REQUIRES); it atomically releases the
/// mutex while blocked and reacquires it before returning, exactly like
/// std::condition_variable. Callers loop over their predicate explicitly —
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.Wait(mutex_);
///
/// — rather than passing predicate lambdas, so the guarded reads stay
/// inside the annotated scope the analysis can see.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) QASCA_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock without unlocking: ownership stays with the caller's
    // MutexLock, and the capability state never changes across Wait().
    // The rank stack is likewise untouched — the caller still owns the
    // lock conceptually for the whole wait.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qasca::util

#endif  // QASCA_UTIL_MUTEX_H_
