// Budget planning: before spending real money, a requester can sweep the
// redundancy z (answers per question) in simulation and see where quality
// saturates — then inspect the fitted worker pool for spammers. Uses the
// public simulation + platform APIs end to end.
//
// Build & run:  ./build/examples/budget_planning

#include <cstdio>

#include "model/worker_stats.h"
#include "platform/engine.h"
#include "platform/qasca_strategy.h"
#include "simulation/dataset.h"
#include "simulation/experiment.h"
#include "util/table.h"

int main() {
  using namespace qasca;

  ApplicationSpec base = PositiveSentimentApp();
  base.num_questions = 300;
  base.workers.num_workers = 30;

  std::printf("Budget planning for a %s-style application (n=%d, k=%d)\n\n",
              base.name.c_str(), base.num_questions, base.questions_per_hit);

  // Sweep the redundancy budget z = 1..6 with QASCA assignment.
  util::Table table({"z (answers/question)", "HITs", "budget ($)",
                     "final F-score"});
  std::vector<SystemFactory> all = DefaultSystems();
  std::vector<SystemFactory> qasca_only = {all[3]};
  for (int z = 1; z <= 6; ++z) {
    ApplicationSpec spec = base;
    spec.answers_per_question = z;
    ExperimentOptions options;
    options.seed = 99;
    options.checkpoints = 2;
    options.track_estimation_deviation = false;
    ExperimentResult result =
        RunParallelExperiment(spec, qasca_only, options);
    table.AddRow()
        .Cell(int64_t{z})
        .Cell(int64_t{spec.TotalHits()})
        .Cell(0.02 * spec.TotalHits(), 2)
        .Percent(result.systems[0].final_quality, 2);
  }
  table.Print();
  std::printf(
      "\nRead the knee of this curve to pick z: past it, each extra dollar\n"
      "buys little quality (the effect the paper's budget model captures\n"
      "with B = m * b).\n\n");

  // Second pass at the chosen budget: drive the engine directly, then audit
  // the workers the platform learned about.
  ApplicationSpec spec = base;
  spec.answers_per_question = 3;
  TaskAssignmentEngine engine(MakeAppConfig(spec),
                              std::make_unique<QascaStrategy>(), 1234);
  util::Rng world(99);
  GroundTruthVector truth = GenerateGroundTruth(spec, world);
  std::vector<double> difficulty = GenerateQuestionDifficulty(spec, world);
  std::vector<SimulatedWorker> crowd = GenerateWorkerPool(spec.workers, world);
  util::Rng arrival = world.Fork();
  util::Rng answer_rng = world.Fork();
  std::vector<int> served(crowd.size(), 0);
  while (!engine.BudgetExhausted()) {
    const SimulatedWorker& worker =
        crowd[arrival.UniformInt(static_cast<int>(crowd.size()))];
    if (spec.num_questions -
            spec.questions_per_hit * (served[worker.id] + 1) <
        0) {
      continue;
    }
    ++served[worker.id];
    auto hit = engine.RequestHit(worker.id);
    QASCA_CHECK(hit.ok()) << hit.status().ToString();
    std::vector<LabelIndex> labels;
    for (QuestionIndex q : *hit) {
      labels.push_back(
          worker.AnswerQuestion(truth[q], answer_rng, difficulty[q]));
    }
    QASCA_CHECK(engine.CompleteHit(worker.id, labels).ok());
  }

  std::vector<WorkerSummary> summaries =
      SummarizeWorkers(engine.database().answers(),
                       engine.database().parameters(),
                       engine.CurrentResults());
  std::vector<WorkerSummary> suspects = SuspectedSpammers(summaries, 0.62);
  std::printf("worker audit after the z=3 run (final F-score %.2f%%):\n",
              100 * engine.QualityAgainstTruth(truth));
  std::printf("  %zu workers fitted, %zu flagged below quality 0.62 "
              "(pool generated with ~15%% true spammers):\n",
              summaries.size(), suspects.size());
  util::Table audit({"worker", "answers", "agreement", "est. quality"});
  for (size_t s = 0; s < suspects.size() && s < 8; ++s) {
    audit.AddRow()
        .Cell(int64_t{suspects[s].worker})
        .Cell(int64_t{suspects[s].answer_count})
        .Percent(suspects[s].agreement_with_results, 1)
        .Cell(suspects[s].estimated_quality, 3);
  }
  audit.Print();
  return 0;
}
