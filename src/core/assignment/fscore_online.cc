#include "core/assignment/fscore_online.h"

#include <cmath>
#include <vector>

#include "core/fractional.h"
#include "core/metrics/fscore.h"
#include "util/fold.h"
#include "util/invariants.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/telemetry_names.h"
#include "util/thread_pool.h"

namespace qasca {
namespace {

constexpr double kDeltaTolerance = 1e-12;
constexpr int kMaxOuterIterations = 1000;

// Fixed chunk grain for the per-question and per-candidate sweeps below;
// constant so the chunk decomposition and the chunk-ordered folds of the
// beta/gamma accumulators are identical for every thread count.
constexpr int kFScoreScanGrain = 512;

// One Update step (Definition 2 / Algorithm 3): given delta, build the 0-1
// fractional program of Theorem 4 and solve it over "exactly k questions
// from the candidate set". Returns the maximising selection, the updated
// delta_{t+1}, and the inner Dinkelbach iteration count v.
FractionalSolution UpdateDelta(const AssignmentRequest& request,
                               const FScoreAssignmentOptions& options,
                               double delta) {
  // One span per Update call: the nested Dinkelbach solve of Algorithm 3.
  util::Span span(request.telemetry, util::tnames::kSpanDinkelbachInner);
  const DistributionMatrix& qc = *request.current;
  const int n = qc.num_questions();
  const double alpha = options.alpha;
  const double threshold = delta * alpha;

  ZeroOneFractionalProgram problem;
  problem.b.assign(n, 0.0);
  problem.d.assign(n, 0.0);

  // beta / gamma accumulate the "if unassigned" contribution of every
  // question; b_i / d_i hold the swing from assigning candidate i
  // (Theorem 4's construction, with \hat{r}^c, \hat{r}^w given by the
  // delta*alpha threshold of Eq. 15). Both sweeps are chunk-parallel: the
  // beta/gamma reduction folds per-chunk partials in chunk order, and the
  // candidate sweep writes disjoint b/d slots.
  const int num_chunks = util::NumChunks(0, n, kFScoreScanGrain);
  std::vector<double> beta_partials(static_cast<size_t>(num_chunks), 0.0);
  std::vector<double> gamma_partials(static_cast<size_t>(num_chunks), 0.0);
  util::ParallelFor(
      request.pool, 0, n, kFScoreScanGrain, [&](int cb, int ce) {
        const size_t chunk =
            static_cast<size_t>(util::ChunkIndex(0, cb, kFScoreScanGrain));
        double beta = 0.0;
        double gamma = 0.0;
        for (int i = cb; i < ce; ++i) {
          double pc = qc.At(i, options.target_label);
          bool rc = pc >= threshold;
          if (rc) {
            beta += pc;
            gamma += alpha;
          }
          gamma += (1.0 - alpha) * pc;
        }
        beta_partials[chunk] = beta;
        gamma_partials[chunk] = gamma;
      });
  // Folded from the non-zero seeds so the op sequence per accumulator is
  // exactly the historical chunk-ordered loop (DeterministicSum's 0.0 seed
  // would change the association and therefore the bits).
  problem.beta = util::DeterministicFold(
      problem.beta, 0, num_chunks, [&](double beta, int c) {
        return beta + beta_partials[static_cast<size_t>(c)];
      });
  problem.gamma = util::DeterministicFold(
      problem.gamma, 0, num_chunks, [&](double gamma, int c) {
        return gamma + gamma_partials[static_cast<size_t>(c)];
      });
  const int num_candidates = static_cast<int>(request.candidates.size());
  util::ParallelFor(
      request.pool, 0, num_candidates, kFScoreScanGrain, [&](int cb, int ce) {
        for (int c = cb; c < ce; ++c) {
          QuestionIndex i = request.candidates[static_cast<size_t>(c)];
          double pc = qc.At(i, options.target_label);
          double pw = request.EstimatedRow(i)[options.target_label];
          bool rc = pc >= threshold;
          bool rw = pw >= threshold;
          problem.b[i] = (rw ? pw : 0.0) - (rc ? pc : 0.0);
          problem.d[i] = alpha * ((rw ? 1.0 : 0.0) - (rc ? 1.0 : 0.0)) +
                         (1.0 - alpha) * (pw - pc);
        }
      });

  return SolveExactlyK(problem, request.candidates, request.k,
                       /*lambda_init=*/0.0);
}

}  // namespace

AssignmentResult AssignFScoreOnline(const AssignmentRequest& request,
                                    const FScoreAssignmentOptions& options) {
  ValidateRequest(request);
  util::Span span(request.telemetry, util::tnames::kSpanFscoreOnline);
  QASCA_CHECK_GT(options.alpha, 0.0);
  QASCA_CHECK_LT(options.alpha, 1.0);
  QASCA_CHECK_GE(options.target_label, 0);
  QASCA_CHECK_LT(options.target_label, request.current->num_labels());

  const DistributionMatrix& qc = *request.current;

  // Degenerate instance: every target probability is zero, so F-score* is 0
  // for every assignment; return the first k candidates.
  double total_target_mass = util::ParallelSum(
      request.pool, 0, qc.num_questions(), kFScoreScanGrain,
      [&](int cb, int ce) {
        double sum = 0.0;
        for (int i = cb; i < ce; ++i) sum += qc.At(i, options.target_label);
        return sum;
      });
  total_target_mass += util::ParallelSum(
      request.pool, 0, static_cast<int>(request.candidates.size()),
      kFScoreScanGrain, [&](int cb, int ce) {
        double sum = 0.0;
        for (int c = cb; c < ce; ++c) {
          sum += request.EstimatedRow(
              request.candidates[static_cast<size_t>(c)])[options.target_label];
        }
        return sum;
      });
  if (total_target_mass <= 0.0) {
    AssignmentResult result;
    result.selected.assign(request.candidates.begin(),
                           request.candidates.begin() + request.k);
    // Every assignment is equally worthless here, so every swing is zero.
    result.selected_scores.assign(static_cast<size_t>(request.k), 0.0);
    return result;
  }

  double delta = 0.0;
  AssignmentResult result;
  if (options.warm_start) {
    // delta'_init = F(Qc): a valid lower bound on delta* because the
    // optimum over Q^X differs from Qc in only k rows and delta increases
    // monotonically from any lower bound (Theorem 3).
    FScoreMetric metric(options.alpha, options.target_label);
    delta = metric.ComputeQuality(qc).lambda;
  }

  for (int outer = 1; outer <= kMaxOuterIterations; ++outer) {
    FractionalSolution update = UpdateDelta(request, options, delta);
    // Theorem 3 monotonicity holds from the second Update on: after one
    // step delta is the value of a feasible (X, R) pair, hence a valid
    // lower bound. The very first step may shrink an overshooting warm
    // start (see below), so it is exempt.
    if (outer > 1) {
      QASCA_DCHECK_OK(invariants::CheckLambdaMonotone(delta, update.value));
    }
    result.outer_iterations = outer;
    result.inner_iterations += update.iterations;
    if (std::fabs(update.value - delta) <= kDeltaTolerance) {
      result.objective = update.value;
      result.selected.clear();
      result.selected_scores.clear();
      result.selected.reserve(static_cast<size_t>(request.k));
      result.selected_scores.reserve(static_cast<size_t>(request.k));
      for (int i = 0; i < qc.num_questions(); ++i) {
        if (!update.z[i]) continue;
        result.selected.push_back(i);
        // Diagnostic score: the target-label probability swing this
        // assignment contributes (Eq. 15's numerator change).
        result.selected_scores.push_back(
            request.EstimatedRow(i)[options.target_label] -
            qc.At(i, options.target_label));
      }
      QASCA_CHECK_OK(invariants::CheckAssignment(result.selected, request.k,
                                                 qc.num_questions()));
      if (request.telemetry != nullptr) {
        request.telemetry
            ->GetCounter(util::tnames::kDinkelbachOuterIterations)
            ->Add(result.outer_iterations);
        request.telemetry
            ->GetCounter(util::tnames::kDinkelbachInnerIterations)
            ->Add(result.inner_iterations);
      }
      return result;
    }
    // Theorem 3 gives monotone increase whenever delta <= delta*. The warm
    // start delta'_init = F(Qc) can exceed delta* (a worker's answers may
    // lower achievable quality); in that case the first Update returns the
    // value of a *feasible* (X, R) pair, which is <= delta*, and monotone
    // convergence resumes from that valid lower bound.
    delta = update.value;
  }
  QASCA_CHECK(false) << "F-score online assignment failed to converge";
  return result;  // Unreachable.
}

}  // namespace qasca
