"""Pass `shared-state-escape`: no unguarded shared writes from pool lambdas.

Work handed to util::ThreadPool (Submit / ParallelFor / ParallelSum) runs
on pool workers concurrently with the caller and with other chunks. The
frontend records, for each lambda at a pool entry point, every write whose
target is reached through the capture rather than a lambda-local
declaration. Such a write is a data race unless

  * it lands in a disjoint per-chunk slot — the write target is indexed
    (`out[i] = ...`, `partials[chunk] += ...`), which is the repo's blessed
    deterministic-reduction shape (DESIGN.md §7), or
  * it happens under a util::MutexLock taken inside the lambda, or
  * it is explicitly justified with `// analyze:allow(shared-state-escape)`
    (e.g. a single-writer flag joined before any read).

Scoped to the decision layers; tests/benchmarks may stage races on purpose.
"""

from __future__ import annotations

from ..base import ERROR, Finding, SourceTree


class SharedStateEscapePass:
    name = "shared-state-escape"
    description = ("writes from ThreadPool lambdas to by-reference-captured "
                   "state must be per-chunk-indexed or lock-guarded")
    severity = ERROR
    roots = ("src/core", "src/model", "src/platform")

    def run(self, tree: SourceTree) -> list[Finding]:
        findings: list[Finding] = []
        for source in tree.files(self.roots):
            model = tree.model(source)
            for lam in model.pool_lambdas:
                where = f"{lam.function}()" if lam.function else "a lambda"
                for write in lam.writes:
                    if write.indexed or write.guarded:
                        continue
                    findings.append(Finding(
                        pass_name=self.name, severity=self.severity,
                        path=source.rel, line=write.line,
                        message=(f"`{write.target}` is captured state "
                                 f"written inside the {lam.call} lambda in "
                                 f"{where} without disjoint indexing or a "
                                 "lock — a data race across pool workers; "
                                 "write into a per-chunk slot, take a "
                                 "util::MutexLock, or justify with "
                                 "analyze:allow(shared-state-escape)")))
        return findings
