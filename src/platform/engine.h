#ifndef QASCA_PLATFORM_ENGINE_H_
#define QASCA_PLATFORM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/metrics/metric.h"
#include "platform/app_config.h"
#include "platform/assignment_core.h"
#include "platform/database.h"
#include "platform/journal.h"
#include "platform/provenance.h"
#include "platform/strategy.h"
#include "platform/trace.h"
#include "util/attributes.h"
#include "util/flight_recorder.h"
#include "util/status.h"
#include "util/telemetry.h"

namespace qasca {

/// The QASCA engine: App Manager + Task Assignment + Database wired
/// together (Figure 1, Appendix A). Drives the two workflows of Figure 2:
///
///  * HIT request  — compute the worker's candidate set S^w, hand Qc and the
///    worker's fitted model to the assignment strategy, dynamically batch
///    the chosen k questions into a HIT;
///  * HIT completion — append the worker's answers to D, re-estimate the
///    parameters (worker models + prior) with EM, and refresh Qc.
///
/// The engine is strategy-pluggable so that the five comparison systems of
/// Section 6.2.1 run under the identical platform harness; QASCA itself is
/// the QascaStrategy.
///
/// Structure: the decision math lives in an owned AssignmentCore — the
/// pure, deterministic, golden-trace-pinned piece (D, Qc, EM, strategy,
/// RNG). This class is the *serving shell* around it: budget and lease
/// accounting on a virtual clock, completion idempotency, the write-ahead
/// lifecycle journal and crash recovery, wall-clock latency / SLO tracking,
/// the event trace and decision provenance. Decisions are a pure function
/// of (config, seed, event history); everything the shell adds is
/// re-derivable bookkeeping.
///
/// Performance model (DESIGN.md "Threading and incrementality"): with
/// AppConfig::num_threads > 1 the core owns a fixed-size thread pool that
/// the hot kernels (EM E-step, Qw estimation, benefit scans) chunk work
/// onto; assignment decisions are byte-identical for every thread count.
/// With AppConfig::em_refresh_interval > 1, full EM refits run only every
/// that-many completions and the completions in between re-derive just the
/// k posterior rows the completed HIT touched.
///
/// Threading contract: externally synchronised — one engine, one driving
/// thread at a time. Under AppManager that thread is whichever worker holds
/// the app's shard lock; standalone it is the single simulation thread.
/// RequestHit / CompleteHit / Tick and every accessor run under that
/// exclusion; concurrency exists only *inside* a call, when a kernel fans
/// chunks onto the core's pool, and those chunks read engine/database state
/// strictly const (Database's single-writer contract) while writing
/// disjoint pre-sized slots. The internally-synchronised members
/// (`telemetry_`'s instruments, the pool) are the only state worker threads
/// touch directly.
class TaskAssignmentEngine {
 public:
  /// `config` must Validate(); `seed` drives all stochastic choices
  /// (Qw sampling, tie-breaking) deterministically.
  TaskAssignmentEngine(AppConfig config,
                       std::unique_ptr<AssignmentStrategy> strategy,
                       uint64_t seed);

  /// HIT request event. Fails with ResourceExhausted once the budget's
  /// B/b HITs have been assigned, FailedPrecondition if the worker already
  /// holds an open HIT, and NotFound if fewer than k questions remain in
  /// the worker's candidate set.
  QASCA_NODISCARD
  util::StatusOr<std::vector<QuestionIndex>> RequestHit(WorkerId worker);

  /// Serves a batch of HIT requests in batch order under one root span,
  /// amortising the shared per-decision state (the Qc snapshot the
  /// strategies read and the cached typical-worker model, both warmed once)
  /// across the batch. Decisions are byte-identical to calling RequestHit
  /// serially for each worker in batch order — the engine RNG stream
  /// advances per request either way (pinned by
  /// AppManagerTest.BatchMatchesSerialInBatchOrder). Per-request failures
  /// land in the matching result slot; the batch never aborts early.
  std::vector<util::StatusOr<std::vector<QuestionIndex>>> ServeRequestBatch(
      const std::vector<WorkerId>& workers);

  /// HIT completion event. `labels` must parallel the question list the
  /// worker received from RequestHit. Idempotent against platform callback
  /// redelivery: a completion matching the worker's most recent completed
  /// HIT (by answer-set hash) is dropped with AlreadyExists, never
  /// double-counted into D or EM; a completion arriving after the lease
  /// expired is rejected with FailedPrecondition.
  QASCA_NODISCARD
  util::Status CompleteHit(WorkerId worker,
                           const std::vector<LabelIndex>& labels);

  /// Advances the virtual clock by `ticks` (> 0) and expires every open
  /// lease whose deadline has passed: the HIT's questions return to the
  /// worker's candidate set, the budget HIT is refunded, and the worker's
  /// next CompleteHit — necessarily for the expired HIT — is rejected as
  /// late (until a new RequestHit supersedes it). With
  /// AppConfig::lease_timeout_ticks == 0 this only advances the clock.
  /// Returns the number of leases expired.
  ///
  /// Expiry and completion mutate the same lease/budget state; under
  /// AppManager both run behind the app's shard lock, so an expiry racing a
  /// completion serialises and the budget is refunded at most once
  /// (AppManagerTest.ExpiryRacingCompletionNeverDoubleRefunds).
  int Tick(uint64_t ticks = 1);

  /// Replays the lifecycle journal at AppConfig::persistence_path through
  /// the normal engine paths, reproducing the crashed engine's state
  /// bit-for-bit (answers, posteriors, worker models, RNG stream, open
  /// leases, virtual clock) — decisions are a pure function of (config,
  /// seed, event history), so re-executing the history is the recovery.
  /// Each replayed assignment re-runs the strategy and is verified against
  /// the journaled selection; a mismatch (journal from a different config
  /// or seed) fails with Internal. Must be called on a freshly constructed
  /// engine; FailedPrecondition if persistence is off.
  QASCA_NODISCARD
  util::Status Recover();

  /// Runs a full EM refit immediately, regardless of where the engine is in
  /// its em_refresh_interval cycle (the incremental-agreement invariant is
  /// checked first, as at any scheduled refit). Benchmarks and tests use
  /// this to force the batch-global state the paper's engine maintains on
  /// every completion.
  void ForceFullEmRefit() { core_->ForceFullEmRefit(); }

  /// The results the requester would receive now: the metric-optimal result
  /// vector R* for the current Qc.
  ResultVector CurrentResults() const { return core_->CurrentResults(); }

  /// Convenience for experiments: the true quality F(T, R*) of the current
  /// results against known ground truth.
  double QualityAgainstTruth(const GroundTruthVector& truth) const {
    return core_->QualityAgainstTruth(truth);
  }

  const AppConfig& config() const { return config_; }
  const Database& database() const { return core_->database(); }
  /// The pure decision core this shell serves (read-only; mutations go
  /// through the engine's lifecycle API).
  const AssignmentCore& core() const { return *core_; }
  /// Ordered log of every assignment and completion this engine served.
  const EventTrace& trace() const { return trace_; }
  /// The engine's telemetry registry: per-stage latency spans, hot-path
  /// counters and gauges. Strategies and kernels record into it through
  /// StrategyContext / AssignmentRequest. Live when
  /// AppConfig::telemetry_enabled — or when the flight recorder or the SLO
  /// tracker needs it (both ride the span machinery).
  const util::MetricRegistry& telemetry() const { return telemetry_; }
  /// The flight recorder capturing span begin/end events for trace export
  /// (Chrome/Perfetto JSON); nullptr unless
  /// AppConfig::flight_recorder_enabled.
  const util::FlightRecorder* flight_recorder() const noexcept {
    return flight_recorder_.get();
  }
  /// The per-assignment decision-provenance ring; nullptr unless
  /// AppConfig::provenance_enabled.
  const ProvenanceLog* provenance() const noexcept {
    return provenance_.get();
  }
  /// The assignment-latency SLO tracker; nullptr unless
  /// AppConfig::slo_p95_assign_ms > 0.
  const util::SloTracker* assign_slo() const noexcept {
    return assign_slo_.get();
  }
  /// Point-in-time copy of every instrument (name-sorted); the programmatic
  /// form behind MetricRegistry::ToJson() / ToPrometheusText().
  util::TelemetrySnapshot TelemetrySnapshot() const {
    return telemetry_.Snapshot();
  }
  const EvaluationMetric& metric() const { return core_->metric(); }
  const AssignmentStrategy& strategy() const { return core_->strategy(); }

  int assigned_hits() const noexcept { return assigned_hits_; }
  int completed_hits() const noexcept { return completed_hits_; }
  /// HITs currently assigned but neither completed nor expired. Always
  /// equals assigned_hits() - completed_hits() (the accounting invariant
  /// the lifecycle stress harness checks after every event).
  int open_hit_count() const noexcept {
    return static_cast<int>(open_hits_.size());
  }
  /// Current virtual-clock time; advances only through Tick().
  uint64_t now_ticks() const noexcept { return now_ticks_; }
  /// Lifecycle fault counters (also exported as telemetry when enabled).
  int leases_expired() const noexcept { return leases_expired_; }
  int questions_requeued() const noexcept { return questions_requeued_; }
  int duplicates_dropped() const noexcept { return duplicates_dropped_; }
  int late_completions_rejected() const noexcept {
    return late_completions_rejected_;
  }

  /// FNV-1a fingerprint of every piece of state an assignment decision can
  /// read: HIT accounting, the virtual clock, open leases, the answer set
  /// D, the Qc cell bit patterns and the current result vector. Recovery
  /// tests compare a recovered engine's fingerprint against the reference
  /// engine's.
  uint64_t StateFingerprint() const;
  /// HITs the remaining budget still affords.
  int remaining_hits() const noexcept {
    return config_.TotalHits() - assigned_hits_;
  }
  bool BudgetExhausted() const noexcept { return remaining_hits() <= 0; }

  /// Wall-clock seconds spent deciding the most recent / slowest HIT
  /// request — the full decision path the shard lock covers (candidate
  /// scan + strategy selection); Figure 6(a) reports the worst case.
  double last_assignment_seconds() const noexcept {
    return last_assignment_seconds_;
  }
  double max_assignment_seconds() const noexcept {
    return max_assignment_seconds_;
  }

  /// Completions served by the cheap incremental path vs full EM refits
  /// (full_em_refits + incremental_refreshes == completed_hits).
  int full_em_refits() const noexcept { return core_->full_em_refits(); }
  int incremental_refreshes() const noexcept {
    return core_->incremental_refreshes();
  }

  /// Max absolute Qc cell difference between the incremental posterior and
  /// the full refit that superseded it, for the latest / worst refit that
  /// followed at least one incremental refresh. 0 until such a refit runs.
  /// Always checked against AppConfig::em_drift_tolerance.
  double last_refresh_drift() const noexcept {
    return core_->last_refresh_drift();
  }
  double max_refresh_drift() const noexcept {
    return core_->max_refresh_drift();
  }

 private:
  /// An assigned, not-yet-completed HIT: the lease the worker holds.
  struct OpenHit {
    /// Monotone per-engine id; names the HIT in duplicate-drop diagnostics.
    uint64_t hit_id = 0;
    /// Virtual-clock tick at which the lease expires; kLeaseNever when
    /// AppConfig::lease_timeout_ticks == 0.
    uint64_t deadline = 0;
    std::vector<QuestionIndex> questions;
  };

  /// Fingerprint of a worker's most recent completed HIT, kept so a
  /// redelivered completion callback is recognised and dropped.
  struct CompletedHit {
    uint64_t hit_id = 0;
    uint64_t answers_hash = 0;
  };

  static uint64_t HashLabels(const std::vector<LabelIndex>& labels);

  /// Pre-resolved instrument handles, looked up once at construction so the
  /// per-HIT path never touches the registry map.
  struct Instruments {
    util::Counter* hits_assigned = nullptr;
    util::Counter* hits_completed = nullptr;
    util::Counter* lease_expired = nullptr;
    util::Counter* questions_requeued = nullptr;
    util::Counter* duplicate_dropped = nullptr;
    util::Counter* late_completion_rejected = nullptr;
    util::Counter* journal_events_replayed = nullptr;
    util::Counter* batches_served = nullptr;
    util::Counter* batch_requests = nullptr;
    util::Gauge* open_hits = nullptr;
    util::Gauge* remaining_hits = nullptr;
  };

  AppConfig config_;
  util::MetricRegistry telemetry_;
  Instruments instruments_;
  EventTrace trace_;
  /// Non-null iff config_.persistence_path is non-empty.
  std::unique_ptr<LifecycleJournal> journal_;
  /// Non-null iff config_.flight_recorder_enabled; attached to telemetry_
  /// at construction so every enabled span also records B/E events.
  std::unique_ptr<util::FlightRecorder> flight_recorder_;
  /// Non-null iff config_.provenance_enabled; one record per assignment.
  std::unique_ptr<ProvenanceLog> provenance_;
  /// Non-null iff config_.slo_p95_assign_ms > 0; fed the decision seconds
  /// of every assignment.
  std::unique_ptr<util::SloTracker> assign_slo_;
  /// The pure decision core (always non-null; constructed after config_ is
  /// validated and telemetry_ is live, destroyed before both).
  std::unique_ptr<AssignmentCore> core_;
  /// Request-scoped trace ids: advances on every RequestHit/CompleteHit
  /// regardless of observability flags (pure bookkeeping, never feeds a
  /// decision — the determinism suite pins this).
  uint64_t next_trace_id_ = 0;
  std::unordered_map<WorkerId, OpenHit> open_hits_;
  std::unordered_map<WorkerId, CompletedHit> last_completion_;
  /// Workers whose lease expired and who have not requested a new HIT yet;
  /// a completion from them is a late delivery for the expired HIT.
  std::unordered_set<WorkerId> expired_pending_;
  /// Virtual-clock time; advances only through Tick().
  uint64_t now_ticks_ = 0;
  uint64_t next_hit_id_ = 0;
  /// True while Recover() re-executes journaled events, so the replay does
  /// not re-append them.
  bool replaying_ = false;
  /// Journal index of the event Recover() is currently re-executing; lets
  /// replayed provenance records carry the same journal_seq the live run
  /// recorded.
  uint64_t replay_journal_seq_ = 0;
  int assigned_hits_ = 0;
  int completed_hits_ = 0;
  int leases_expired_ = 0;
  int questions_requeued_ = 0;
  int duplicates_dropped_ = 0;
  int late_completions_rejected_ = 0;
  double last_assignment_seconds_ = 0.0;
  double max_assignment_seconds_ = 0.0;
};

}  // namespace qasca

#endif  // QASCA_PLATFORM_ENGINE_H_
