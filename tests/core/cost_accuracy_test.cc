#include "core/metrics/cost_accuracy.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/assignment/brute_force.h"
#include "core/assignment/topk_benefit.h"
#include "core/metrics/accuracy.h"
#include "util/rng.h"

namespace qasca {
namespace {

DistributionMatrix RandomMatrix(int n, int num_labels, util::Rng& rng) {
  DistributionMatrix q(n, num_labels);
  std::vector<double> w(num_labels);
  for (int i = 0; i < n; ++i) {
    for (double& x : w) x = rng.Uniform(0.01, 1.0);
    q.SetRowNormalized(i, w);
  }
  return q;
}

TEST(CostAccuracyTest, ZeroOneReducesToAccuracy) {
  util::Rng rng(1);
  CostAccuracyMetric cost = CostAccuracyMetric::ZeroOne(3);
  AccuracyMetric plain;
  DistributionMatrix q = RandomMatrix(8, 3, rng);
  ResultVector r = {0, 1, 2, 0, 1, 2, 0, 1};
  EXPECT_NEAR(cost.Evaluate(q, r), plain.Evaluate(q, r), 1e-12);
  EXPECT_EQ(cost.OptimalResult(q), plain.OptimalResult(q));
  EXPECT_NEAR(cost.Quality(q), plain.Quality(q), 1e-12);

  GroundTruthVector truth = {0, 1, 2, 1, 1, 0, 0, 2};
  EXPECT_NEAR(cost.EvaluateAgainstTruth(truth, r),
              plain.EvaluateAgainstTruth(truth, r), 1e-12);
}

TEST(CostAccuracyTest, AsymmetricCostsShiftTheOptimalResult) {
  // Missing a "target" (truth 0, returned 1) costs 5x the reverse error:
  // the optimal result returns label 0 even at modest probability.
  CostAccuracyMetric cost({0.0, 5.0, 1.0, 0.0}, 2);
  DistributionMatrix q(1, 2);
  q.SetRow(0, std::vector<double>{0.3, 0.7});
  // Expected cost of returning 0: 0.7 * 1 = 0.7; of returning 1:
  // 0.3 * 5 = 1.5 -> return 0 despite being the minority label.
  EXPECT_EQ(cost.OptimalResult(q)[0], 0);
  AccuracyMetric plain;
  EXPECT_EQ(plain.OptimalResult(q)[0], 1);
}

TEST(CostAccuracyTest, QualityMatchesOptimalEvaluation) {
  util::Rng rng(2);
  CostAccuracyMetric cost({0.0, 2.0, 0.5, 0.0}, 2);
  DistributionMatrix q = RandomMatrix(20, 2, rng);
  EXPECT_NEAR(cost.Quality(q), cost.Evaluate(q, cost.OptimalResult(q)),
              1e-12);
}

TEST(CostAccuracyTest, OptimalBeatsEnumeration) {
  util::Rng rng(3);
  CostAccuracyMetric cost({0.0, 3.0, 1.0, 0.0}, 2);
  for (int trial = 0; trial < 20; ++trial) {
    DistributionMatrix q = RandomMatrix(6, 2, rng);
    double best = cost.Quality(q);
    ResultVector r(6);
    for (uint32_t mask = 0; mask < 64; ++mask) {
      for (int i = 0; i < 6; ++i) r[i] = (mask >> i) & 1u;
      EXPECT_LE(cost.Evaluate(q, r), best + 1e-12);
    }
  }
}

TEST(CostAccuracyTest, PerfectResultScoresOne) {
  CostAccuracyMetric cost({0.0, 2.0, 1.0, 0.0}, 2);
  GroundTruthVector truth = {0, 1, 0};
  EXPECT_DOUBLE_EQ(cost.EvaluateAgainstTruth(truth, {0, 1, 0}), 1.0);
}

TEST(CostAccuracyTest, WorstResultScoresByNormalisedCost) {
  CostAccuracyMetric cost({0.0, 2.0, 1.0, 0.0}, 2);
  // Returning 1 for truth 0 costs 2 (the max): quality contribution 0;
  // returning 0 for truth 1 costs 1: contribution 0.5.
  GroundTruthVector truth = {0, 1};
  EXPECT_DOUBLE_EQ(cost.EvaluateAgainstTruth(truth, {1, 0}), 0.25);
}

TEST(CostAccuracyTest, DecomposableTopKMatchesBruteForce) {
  util::Rng rng(4);
  CostAccuracyMetric cost({0.0, 4.0, 1.0, 0.0}, 2);
  for (int trial = 0; trial < 15; ++trial) {
    DistributionMatrix qc = RandomMatrix(6, 2, rng);
    DistributionMatrix qw = RandomMatrix(6, 2, rng);
    AssignmentRequest request;
    request.current = &qc;
    request.estimated = &qw;
    request.candidates = {0, 1, 2, 3, 4, 5};
    request.k = 2;
    AssignmentResult fast = AssignTopKBenefitDecomposable(
        request,
        [&](std::span<const double> row) { return cost.RowQuality(row); });
    AssignmentResult slow = AssignBruteForce(request, cost);
    EXPECT_NEAR(fast.objective, slow.objective, 1e-10) << "trial " << trial;
  }
}

TEST(CostAccuracyDeathTest, RejectsNonZeroDiagonal) {
  EXPECT_DEATH(CostAccuracyMetric({0.5, 1.0, 1.0, 0.0}, 2),
               "diagonal costs");
}

TEST(CostAccuracyDeathTest, RejectsNegativeCosts) {
  EXPECT_DEATH(CostAccuracyMetric({0.0, -1.0, 1.0, 0.0}, 2),
               "non-negative");
}

TEST(CostAccuracyDeathTest, RejectsAllZeroCosts) {
  EXPECT_DEATH(CostAccuracyMetric({0.0, 0.0, 0.0, 0.0}, 2), "all zero");
}

}  // namespace
}  // namespace qasca
