#include "core/assignment/topk_benefit.h"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "util/invariants.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/telemetry_names.h"
#include "util/thread_pool.h"

namespace qasca {
namespace {

double RowMax(std::span<const double> row) {
  return *std::max_element(row.begin(), row.end());
}

// Fixed chunk grain for the per-candidate benefit scan and the fixed-term
// objective sum; constant so the decomposition (and the chunk-ordered fold
// of the objective) is identical for every thread count.
constexpr int kBenefitScanGrain = 512;

}  // namespace

AssignmentResult AssignTopKBenefitDecomposable(
    const AssignmentRequest& request, const RowQualityFn& row_quality) {
  ValidateRequest(request);
  util::Span span(request.telemetry, util::tnames::kSpanTopkScan);
  const DistributionMatrix& current = *request.current;
  const DistributionMatrix& estimated = *request.estimated;

  // Benefit of assigning each candidate (Section 4.1, generalised to any
  // decomposable row quality). Each candidate's benefit is independent, so
  // the scan parallelises by chunk; slots are written by candidate index,
  // leaving the vector handed to nth_element identical across thread counts.
  const int num_candidates = static_cast<int>(request.candidates.size());
  if (request.telemetry != nullptr) {
    request.telemetry->GetCounter(util::tnames::kTopkCandidatesScanned)
        ->Add(num_candidates);
  }
  std::vector<std::pair<double, QuestionIndex>> benefits(
      static_cast<size_t>(num_candidates));
  util::ParallelFor(
      request.pool, 0, num_candidates, kBenefitScanGrain, [&](int cb, int ce) {
        for (int c = cb; c < ce; ++c) {
          QuestionIndex i = request.candidates[static_cast<size_t>(c)];
          benefits[static_cast<size_t>(c)] = {
              row_quality(estimated.Row(i)) - row_quality(current.Row(i)), i};
        }
      });

  // Linear-time top-k selection (PICK [2]); ties broken by question index
  // for determinism.
  auto greater = [](const std::pair<double, QuestionIndex>& a,
                    const std::pair<double, QuestionIndex>& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  };
  std::nth_element(benefits.begin(), benefits.begin() + (request.k - 1),
                   benefits.end(), greater);

  AssignmentResult result;
  result.outer_iterations = 1;
  result.selected.reserve(request.k);
  for (int c = 0; c < request.k; ++c) {
    result.selected.push_back(benefits[c].second);
  }
  std::sort(result.selected.begin(), result.selected.end());

  // Objective: the fixed term (quality of every current row) plus the
  // selected benefits, averaged (Eq. 12).
  double total = util::ParallelSum(
      request.pool, 0, current.num_questions(), kBenefitScanGrain,
      [&](int cb, int ce) {
        double sum = 0.0;
        for (int i = cb; i < ce; ++i) sum += row_quality(current.Row(i));
        return sum;
      });
  for (int c = 0; c < request.k; ++c) total += benefits[c].first;
  result.objective = total / current.num_questions();
  QASCA_DCHECK_OK(invariants::CheckAssignment(result.selected, request.k,
                                              current.num_questions()));
  return result;
}

AssignmentResult AssignTopKBenefit(const AssignmentRequest& request) {
  return AssignTopKBenefitDecomposable(
      request, [](std::span<const double> row) { return RowMax(row); });
}

}  // namespace qasca
