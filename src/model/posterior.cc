#include "model/posterior.h"

#include <algorithm>

#include "core/kernels/kernels.h"
#include "util/fold.h"
#include "util/invariants.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/telemetry_names.h"

namespace qasca {
namespace {

// Scales the n weights at `w` to sum to one and returns the
// pre-normalisation total. A non-positive total (all labels ruled out, which
// can happen with degenerate 0/1 worker models giving contradictory answers)
// falls back to uniform rather than abort: the data is inconsistent with the
// model, not with the caller.
//
// The sum runs through kernels::RowSum (the fixed 4-lane fold, bit-identical
// on every ISA) and the scale through kernels::DivRow (elementwise true
// division, exact per IEEE). Every posterior / Qw row in the tree is
// normalised by this one helper, so the legacy deep-copy path and the
// overlay path normalise identically by construction.
double NormalizeRowInPlace(double* w, int n) {
  const double total = kernels::RowSum(w, n);
  if (total <= 0.0) {
    std::fill(w, w + n, 1.0 / static_cast<double>(n));
    return total;
  }
  kernels::DivRow(w, n, total);
  return total;
}

double NormalizeInPlace(std::vector<double>& weights) {
  return NormalizeRowInPlace(weights.data(), static_cast<int>(weights.size()));
}

}  // namespace

void ComputePosteriorRowInto(const AnswerList& answers,
                             const std::vector<double>& prior,
                             const WorkerModelLookup& models,
                             std::vector<double>* out, double* marginal) {
  const int num_labels = static_cast<int>(prior.size());
  QASCA_CHECK_GT(num_labels, 0);
  QASCA_CHECK(out != nullptr);
  out->assign(prior.begin(), prior.end());
  std::vector<double>& weights = *out;
  for (const Answer& answer : answers) {
    const WorkerModel& model = models(answer.worker);
    QASCA_CHECK_EQ(model.num_labels(), num_labels);
    for (int j = 0; j < num_labels; ++j) {
      weights[j] *= model.AnswerProbability(answer.label, j);
    }
  }
  double total = NormalizeInPlace(weights);
  if (marginal != nullptr) *marginal = total;
  QASCA_DCHECK_OK(invariants::CheckDistributionRow(weights));
}

void ComputePosteriorRowWithLikelihoods(const AnswerList& answers,
                                        const std::vector<double>& prior,
                                        const LikelihoodLookup& likelihoods,
                                        std::vector<double>* out,
                                        double* marginal) {
  const int num_labels = static_cast<int>(prior.size());
  QASCA_CHECK_GT(num_labels, 0);
  QASCA_CHECK(out != nullptr);
  out->assign(prior.begin(), prior.end());
  for (const Answer& answer : answers) {
    const WorkerLikelihoods& table = likelihoods(answer.worker);
    QASCA_CHECK_EQ(table.num_labels(), num_labels);
    // Table row `answered` holds the same AnswerProbability doubles the
    // model-lookup loop multiplies by, contiguously in truth — one
    // elementwise kernel per answer, bitwise-equal product.
    kernels::MulRowInPlace(out->data(), table.Row(answer.label), num_labels);
  }
  double total = NormalizeInPlace(*out);
  if (marginal != nullptr) *marginal = total;
  QASCA_DCHECK_OK(invariants::CheckDistributionRow(*out));
}

std::vector<double> ComputePosteriorRow(const AnswerList& answers,
                                        const std::vector<double>& prior,
                                        const WorkerModelLookup& models,
                                        double* marginal) {
  std::vector<double> weights;
  ComputePosteriorRowInto(answers, prior, models, &weights, marginal);
  return weights;
}

DistributionMatrix ComputeCurrentDistribution(
    const AnswerSet& answers, const std::vector<double>& prior,
    const WorkerModelLookup& models) {
  const int n = static_cast<int>(answers.size());
  const int num_labels = static_cast<int>(prior.size());
  DistributionMatrix qc(n, num_labels);
  std::vector<double> row;
  row.reserve(static_cast<size_t>(num_labels));
  for (int i = 0; i < n; ++i) {
    ComputePosteriorRowInto(answers[i], prior, models, &row);
    qc.SetRow(i, row);
  }
  return qc;
}

std::vector<double> EstimateWorkerRowAt(std::span<const double> current_row,
                                        const WorkerModel& model, QwMode mode,
                                        double u01) {
  const int num_labels = static_cast<int>(current_row.size());
  QASCA_CHECK_EQ(model.num_labels(), num_labels);

  // Predicted answer distribution P(a = j' | D_i) (Eq. 17). For WP models
  // the double sum collapses to a closed form — O(l) instead of O(l^2),
  // which matters for many-label applications like CompanyLogo (l = 214).
  std::vector<double> answer_distribution(num_labels, 0.0);
  if (model.kind() == WorkerModel::Kind::kWorkerProbability &&
      num_labels > 1) {
    double m = model.worker_probability();
    double off = (1.0 - m) / (num_labels - 1);
    for (int answered = 0; answered < num_labels; ++answered) {
      answer_distribution[answered] =
          m * current_row[answered] + off * (1.0 - current_row[answered]);
    }
  } else {
    for (int answered = 0; answered < num_labels; ++answered) {
      for (int truth = 0; truth < num_labels; ++truth) {
        answer_distribution[answered] +=
            model.AnswerProbability(answered, truth) * current_row[truth];
      }
    }
  }

  // Qw_{i,j} proportional to Qc_{i,j} * P(a = answered | t = j) (Eq. 18),
  // written into `out`.
  auto conditioned_into = [&](LabelIndex answered, std::vector<double>& out) {
    for (int j = 0; j < num_labels; ++j) {
      out[j] = current_row[j] * model.AnswerProbability(answered, j);
    }
    NormalizeInPlace(out);
  };

  if (mode == QwMode::kSampled) {
    LabelIndex sampled = util::SampleWeightedAt(answer_distribution, u01);
    std::vector<double> weights(num_labels);
    conditioned_into(sampled, weights);
    return weights;
  }

  // kExpected: mixture of the conditioned posteriors weighted by the
  // predicted answer distribution. One conditioned-row buffer is reused
  // across the mixture terms.
  std::vector<double> expected(num_labels, 0.0);
  std::vector<double> weights(num_labels);
  for (int answered = 0; answered < num_labels; ++answered) {
    if (answer_distribution[answered] <= 0.0) continue;
    conditioned_into(answered, weights);
    for (int j = 0; j < num_labels; ++j) {
      expected[j] += answer_distribution[answered] * weights[j];
    }
  }
  NormalizeInPlace(expected);
  QASCA_DCHECK_OK(invariants::CheckDistributionRow(expected));
  return expected;
}

std::vector<double> EstimateWorkerRow(std::span<const double> current_row,
                                      const WorkerModel& model, QwMode mode,
                                      util::Rng& rng) {
  return EstimateWorkerRowAt(current_row, model, mode,
                             mode == QwMode::kSampled ? rng.Uniform() : 0.0);
}

// Candidate rows are independent, so the scan parallelises by chunk; the
// grain is fixed (never derived from the pool size) to keep the chunk
// decomposition — and with it any scheduling-sensitive behaviour —
// identical across thread counts.
namespace {
constexpr int kQwScanGrain = 256;
}  // namespace

DistributionMatrix EstimateWorkerDistribution(
    const DistributionMatrix& current, const WorkerModel& model,
    const std::vector<QuestionIndex>& candidates, QwMode mode, util::Rng& rng,
    util::ThreadPool* pool, util::MetricRegistry* telemetry) {
  if (telemetry != nullptr && mode == QwMode::kSampled) {
    // One weighted draw per candidate row (Eq. 17's sampling step).
    telemetry->GetCounter(util::tnames::kQwSamplesDrawn)
        ->Add(static_cast<int64_t>(candidates.size()));
  }
  DistributionMatrix qw = current;
  // One base draw per call keeps the caller's Rng stream advanced the same
  // way regardless of candidate count or threading; every candidate then
  // derives its own counter-based stream from (base, question index).
  const uint64_t base = mode == QwMode::kSampled ? rng.engine()() : 0;
  const int count = static_cast<int>(candidates.size());
  util::ParallelFor(pool, 0, count, kQwScanGrain, [&](int cb, int ce) {
    for (int c = cb; c < ce; ++c) {
      QuestionIndex i = candidates[static_cast<size_t>(c)];
      double u01 = 0.0;
      if (mode == QwMode::kSampled) {
        util::SplitMix64 stream(
            util::SplitMix64::MixSeed(base, static_cast<uint64_t>(i)));
        u01 = stream.NextDouble();
      }
      qw.SetRow(i, EstimateWorkerRowAt(current.Row(i), model, mode, u01));
    }
  });
  return qw;
}

void EstimateWorkerRowsInto(const DistributionMatrix& current,
                            const WorkerModel& model,
                            const WorkerLikelihoods& likelihoods,
                            const std::vector<QuestionIndex>& candidates,
                            QwMode mode, util::Rng& rng, QwOverlay* overlay,
                            util::ThreadPool* pool,
                            util::MetricRegistry* telemetry,
                            bool fuse_row_max) {
  QASCA_CHECK(overlay != nullptr);
  const int num_labels = current.num_labels();
  QASCA_CHECK_EQ(model.num_labels(), num_labels);
  QASCA_CHECK_EQ(likelihoods.num_labels(), num_labels);
  const int count = static_cast<int>(candidates.size());
  {
    // Arming the overlay (slot table reset + candidate stamping) is the
    // serial prefix of every estimation; traced separately so a trace shows
    // how much of estimate_qw is setup vs. row kernels.
    util::Span overlay_span(telemetry, util::tnames::kSpanQwOverlayFill);
    overlay->Begin(current.num_questions(), num_labels, count);
    for (int c = 0; c < count; ++c) {
      overlay->Stamp(candidates[static_cast<size_t>(c)], c);
    }
  }

  const bool wp_closed_form =
      mode == QwMode::kExpected &&
      model.kind() == WorkerModel::Kind::kWorkerProbability && num_labels > 1;

  if (telemetry != nullptr) {
    if (mode == QwMode::kSampled) {
      telemetry->GetCounter(util::tnames::kQwSamplesDrawn)
          ->Add(static_cast<int64_t>(count));
    }
    if (wp_closed_form) {
      telemetry->GetCounter(util::tnames::kQwClosedFormRows)
          ->Add(static_cast<int64_t>(count));
    }
    telemetry->GetCounter(util::tnames::kQwOverlayRows)
        ->Add(static_cast<int64_t>(count));
  }

  // Same base-draw discipline as EstimateWorkerDistribution: kExpected
  // consumes no randomness at all, kSampled takes exactly one engine draw
  // and derives per-candidate SplitMix64 streams from (base, question).
  const uint64_t base = mode == QwMode::kSampled ? rng.engine()() : 0;

  if (count == 0) return;
  double* row_max = fuse_row_max ? overlay->ArmQualities() : nullptr;

  if (wp_closed_form) {
    // E[Qw_i] = sum_a P(a | D_i) * conditioned(a) = Qc_i exactly (law of
    // total probability over Eqs. 17-18; the per-answer normalisers are the
    // mixture weights). Copy the current rows instead of materialising and
    // re-normalising the mixture.
    const kernels::RowMaxFn fused_max = kernels::ActiveRowMax();
    util::ParallelFor(pool, 0, count, kQwScanGrain, [&](int cb, int ce) {
      for (int c = cb; c < ce; ++c) {
        QuestionIndex i = candidates[static_cast<size_t>(c)];
        std::span<const double> cur = current.Row(i);
        std::copy(cur.begin(), cur.end(), overlay->MutableRow(c));
        if (row_max != nullptr) {
          row_max[c] = fused_max(cur.data(), num_labels);
        }
      }
    });
    return;
  }

  // WP answer distributions come from the O(l) closed-form kernel; every
  // other model shape goes through the confusion-matrix kernel against one
  // hoisted row-major copy of the matrix (AsConfusionMatrix materialises the
  // same AnswerProbability doubles, so the products match the legacy
  // model-call loop bitwise).
  const bool use_wp_kernel =
      model.kind() == WorkerModel::Kind::kWorkerProbability && num_labels > 1;
  const double wp_m = use_wp_kernel ? model.worker_probability() : 0.0;
  const double wp_off =
      use_wp_kernel ? (1.0 - wp_m) / (num_labels - 1) : 0.0;
  std::vector<double> cm;
  if (!use_wp_kernel) cm = model.AsConfusionMatrix();

  // Per-chunk kernel scratch: two l-sized rows per chunk (the predicted
  // answer distribution and, for kExpected mixtures, one conditioned row),
  // addressed by the canonical chunk index so parallel chunks never share.
  std::vector<double> scratch(
      static_cast<size_t>(util::NumChunks(0, count, kQwScanGrain)) * 2 *
      num_labels);

  if (mode == QwMode::kSampled) {
    // Fused batch kernel (kernels::SampledQwRows): answer distribution,
    // per-candidate SplitMix64 variate, weighted draw, conditioning and
    // normalisation in one dispatch per chunk. Overlay slots are
    // slot-contiguous per chunk (slot == candidate position), so the chunk
    // writes one dense [cb, ce) block of rows — and of fused row maxima.
    const double* qc_base = current.Row(0).data();
    util::Span batch_span(telemetry, util::tnames::kSpanQwSampledBatch);
    util::ParallelFor(pool, 0, count, kQwScanGrain, [&](int cb, int ce) {
      const int chunk = util::ChunkIndex(0, cb, kQwScanGrain);
      double* dist =
          scratch.data() + static_cast<size_t>(chunk) * 2 * num_labels;
      kernels::SampledQwRows(
          qc_base, num_labels, candidates.data() + cb, ce - cb, base, wp_m,
          wp_off, use_wp_kernel ? nullptr : cm.data(), likelihoods.Row(0),
          overlay->MutableRow(cb), row_max != nullptr ? row_max + cb : nullptr,
          dist);
#if QASCA_ENABLE_DCHECKS
      for (int c = cb; c < ce; ++c) {
        QASCA_DCHECK_OK(invariants::CheckDistributionRow(
            std::span<const double>(overlay->MutableRow(c),
                                    static_cast<size_t>(num_labels))));
      }
#endif
    });
    return;
  }

  util::ParallelFor(pool, 0, count, kQwScanGrain, [&](int cb, int ce) {
    const int chunk = util::ChunkIndex(0, cb, kQwScanGrain);
    double* dist =
        scratch.data() + static_cast<size_t>(chunk) * 2 * num_labels;
    double* mix = dist + num_labels;
    for (int c = cb; c < ce; ++c) {
      QuestionIndex i = candidates[static_cast<size_t>(c)];
      std::span<const double> cur = current.Row(i);
      // Predicted answer distribution P(a = j' | D_i) (Eq. 17).
      if (use_wp_kernel) {
        kernels::WpAnswerDistribution(cur.data(), num_labels, wp_m, wp_off,
                                      dist);
      } else {
        kernels::CmAnswerDistribution(cm.data(), cur.data(), num_labels,
                                      dist);
      }
      double* out = overlay->MutableRow(c);
      // kExpected mixture (non-WP models): accumulate the conditioned
      // posteriors weighted by the predicted answer distribution.
      std::fill(out, out + num_labels, 0.0);
      for (int answered = 0; answered < num_labels; ++answered) {
        if (dist[answered] <= 0.0) continue;
        kernels::MulRow(mix, cur.data(), likelihoods.Row(answered),
                        num_labels);
        NormalizeRowInPlace(mix, num_labels);
        kernels::AxpyRow(out, dist[answered], mix, num_labels);
      }
      NormalizeRowInPlace(out, num_labels);
      if (row_max != nullptr) {
        row_max[c] = kernels::RowMax(out, num_labels);
      }
      QASCA_DCHECK_OK(invariants::CheckDistributionRow(
          std::span<const double>(out, static_cast<size_t>(num_labels))));
    }
  });
}

}  // namespace qasca
