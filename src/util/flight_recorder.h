#ifndef QASCA_UTIL_FLIGHT_RECORDER_H_
#define QASCA_UTIL_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/tick.h"

namespace qasca::util {

/// Request-scoped trace id, maintained as a thread-local by TraceScope so
/// span begin/end events recorded anywhere under one engine call can be
/// attributed to that request without threading an id through every
/// signature. Scopes nest (the previous id is restored on destruction);
/// outside any scope the id is 0.
///
/// The id is bookkeeping only: it is derived from a per-engine counter that
/// advances on every request whether or not a recorder is attached, and it
/// never feeds an assignment decision (DeterminismTest pins this).
class TraceScope {
 public:
  explicit TraceScope(uint64_t trace_id) noexcept;
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// The innermost active trace id on this thread (0 outside any scope).
  static uint64_t current() noexcept;

 private:
  uint64_t saved_;
};

/// Always-on-capable, fixed-capacity flight recorder: a lock-sharded ring
/// buffer of structured span begin/end events, exportable on demand as
/// Chrome/Perfetto `trace_event` JSON so one slow request can be
/// reconstructed stage by stage (DESIGN.md §13).
///
/// Design points:
///  - Fixed memory: `capacity` events total, split evenly across 8 shards;
///    when a shard's ring is full the oldest events in that shard are
///    overwritten. Steady state is therefore "the last ~capacity events",
///    which is exactly what a post-hoc latency investigation needs.
///  - Lock sharding: a thread always appends to the shard keyed by its own
///    small recorder-assigned thread id, so threads only contend when they
///    hash to the same shard, and one thread's events stay in append order
///    within one shard (the export relies on this).
///  - Event payload is 32 bytes and records the *registered* span name
///    pointer (tnames constants have static storage), so appending never
///    allocates and never copies strings — safe on the per-HIT hot path.
///  - Timestamps come from an injectable TickSource (default:
///    SteadyTickSource), so tests pin byte-exact exports with a counter.
///
/// Threading: RecordBegin/RecordEnd are safe from any thread; Snapshot and
/// the exporters take every shard lock briefly and may run concurrently
/// with recording (they see a consistent per-shard prefix).
class FlightRecorder {
 public:
  enum class Phase : uint8_t { kBegin = 0, kEnd = 1 };

  struct Event {
    uint64_t ts_ns = 0;          // TickSource nanoseconds
    uint64_t trace_id = 0;       // TraceScope::current() at record time
    const char* name = nullptr;  // tnames constant (static storage)
    uint32_t tid = 0;            // recorder-local small thread id
    Phase phase = Phase::kBegin;
  };

  /// `capacity_events` is the total ring capacity (a span costs two
  /// events); it is rounded up so every shard holds at least one event.
  /// A default-constructed `tick_source` means SteadyTickSource().
  explicit FlightRecorder(int capacity_events,
                          TickSource tick_source = TickSource());

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends a begin/end event stamped with the current tick, thread id and
  /// trace id. `name` must have static storage duration (tnames constant).
  void RecordBegin(const char* name) noexcept;
  void RecordEnd(const char* name) noexcept;

  /// Total ring capacity in events (after per-shard rounding).
  int capacity() const noexcept { return capacity_; }

  /// Events appended over the recorder's lifetime (including overwritten
  /// ones).
  int64_t total_events() const;

  /// Merged view of every shard, sorted by timestamp; events of one thread
  /// keep their append order. At most capacity() entries.
  std::vector<Event> Snapshot() const;

  /// Chrome/Perfetto trace_event JSON: {"traceEvents":[...]} with "B"/"E"
  /// phase pairs, microsecond "ts" in non-decreasing order, and the trace
  /// id in "args". Per thread the pairs are balanced: an "E" whose "B" was
  /// evicted from the ring is dropped, as is a "B" still unclosed at export
  /// time, so the file always loads in the Perfetto UI.
  std::string ToChromeJson() const;

 private:
  static constexpr int kShards = 8;

  struct Shard {
    mutable Mutex mutex{lock_ranks::kFlightRecorderShard};
    /// Ring storage, capacity shard_capacity_; logical order is the append
    /// order, oldest first once wrapped.
    std::vector<Event> ring QASCA_GUARDED_BY(mutex);
    /// Events ever appended to this shard; head % shard_capacity_ is the
    /// next write slot.
    int64_t head QASCA_GUARDED_BY(mutex) = 0;
  };

  void Record(const char* name, Phase phase) noexcept;

  // shard_capacity_ precedes capacity_: the init list derives the total
  // from the rounded-up per-shard size.
  const int shard_capacity_;
  const int capacity_;
  const TickSource tick_source_;
  Shard shards_[kShards];
};

}  // namespace qasca::util

#endif  // QASCA_UTIL_FLIGHT_RECORDER_H_
