#include "model/majority.h"

#include <gtest/gtest.h>

namespace qasca {
namespace {

TEST(MajorityVoteTest, PicksModalLabel) {
  AnswerSet answers(2);
  answers[0] = {{1, 0}, {2, 1}, {3, 0}};
  answers[1] = {{1, 1}, {2, 1}, {3, 0}};
  ResultVector result = MajorityVote(answers, 2);
  EXPECT_EQ(result, (ResultVector{0, 1}));
}

TEST(MajorityVoteTest, TiesBreakTowardSmallerLabel) {
  AnswerSet answers(1);
  answers[0] = {{1, 2}, {2, 1}};
  EXPECT_EQ(MajorityVote(answers, 3)[0], 1);
}

TEST(MajorityVoteTest, UnansweredDefaultsToLabelZero) {
  AnswerSet answers(3);
  answers[1] = {{1, 2}};
  ResultVector result = MajorityVote(answers, 3);
  EXPECT_EQ(result, (ResultVector{0, 2, 0}));
}

TEST(VoteShareTest, SharesMatchCounts) {
  AnswerSet answers(1);
  answers[0] = {{1, 0}, {2, 0}, {3, 1}};
  DistributionMatrix q = VoteShareDistribution(answers, 2, /*smoothing=*/0.0);
  EXPECT_NEAR(q.At(0, 0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(q.At(0, 1), 1.0 / 3.0, 1e-12);
}

TEST(VoteShareTest, SmoothingPullsTowardUniform) {
  AnswerSet answers(1);
  answers[0] = {{1, 0}};
  DistributionMatrix smoothed = VoteShareDistribution(answers, 2, 1.0);
  EXPECT_NEAR(smoothed.At(0, 0), 2.0 / 3.0, 1e-12);
  DistributionMatrix raw = VoteShareDistribution(answers, 2, 0.0);
  EXPECT_NEAR(raw.At(0, 0), 1.0, 1e-12);
}

TEST(VoteShareTest, UnansweredStaysUniformWithoutSmoothing) {
  AnswerSet answers(1);
  DistributionMatrix q = VoteShareDistribution(answers, 4, 0.0);
  EXPECT_NEAR(q.At(0, 0), 0.25, 1e-12);
  EXPECT_TRUE(q.IsNormalized());
}

TEST(MajorityVoteDeathTest, RejectsOutOfRangeLabel) {
  AnswerSet answers(1);
  answers[0] = {{1, 5}};
  EXPECT_DEATH(MajorityVote(answers, 2), "Check failed");
}

}  // namespace
}  // namespace qasca
