// AVX2 kernel table. This is the only TU compiled with -mavx2, and it also
// carries -ffp-contract=off: GCC's -mavx2 does not imply -mfma, but
// contraction policy is what actually guarantees the multiply-add sequences
// below stay two correctly-rounded ops, matching the scalar table
// bit-for-bit (kernels.h). Lane extraction after reductions is always
// in-order (never haddpd-style shuffles that would change the fold order).

#include "core/kernels/kernel_table.h"

#if QASCA_KERNELS_X86

#include <immintrin.h>

namespace qasca::kernels {
namespace {

// One 4-lane register *is* the canonical 4-lane schedule; merge the lanes
// in index order: ((acc0 + acc1) + acc2) + acc3.
double RowSumImpl(const double* x, int n) {
  __m256d acc = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double result = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (; i < n; ++i) result += x[i];
  return result;
}

double RowMaxImpl(const double* x, int n) {
  int i = 0;
  double best = x[0];
  if (n >= 4) {
    __m256d acc = _mm256_loadu_pd(x);
    for (i = 4; i + 4 <= n; i += 4) {
      acc = _mm256_max_pd(acc, _mm256_loadu_pd(x + i));
    }
    double lanes[4];
    _mm256_storeu_pd(lanes, acc);
    best = lanes[0];
    for (int lane = 1; lane < 4; ++lane) {
      best = best < lanes[lane] ? lanes[lane] : best;
    }
  } else {
    i = 1;
  }
  for (; i < n; ++i) best = best < x[i] ? x[i] : best;
  return best;
}

void MulRowImpl(double* out, const double* a, const double* b, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void MulRowInPlaceImpl(double* inout, const double* b, int n) {
  MulRowImpl(inout, inout, b, n);
}

void DivRowImpl(double* inout, int n, double divisor) {
  const __m256d d = _mm256_set1_pd(divisor);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(inout + i, _mm256_div_pd(_mm256_loadu_pd(inout + i), d));
  }
  for (; i < n; ++i) inout[i] /= divisor;
}

void AxpyRowImpl(double* acc, double scale, const double* x, int n) {
  const __m256d s = _mm256_set1_pd(scale);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d product = _mm256_mul_pd(s, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), product));
  }
  for (; i < n; ++i) acc[i] += scale * x[i];
}

void WpAnswerDistributionImpl(const double* row, int n, double m, double off,
                              double* out) {
  const __m256d mv = _mm256_set1_pd(m);
  const __m256d offv = _mm256_set1_pd(off);
  const __m256d one = _mm256_set1_pd(1.0);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r = _mm256_loadu_pd(row + i);
    const __m256d hit = _mm256_mul_pd(mv, r);
    const __m256d miss = _mm256_mul_pd(offv, _mm256_sub_pd(one, r));
    _mm256_storeu_pd(out + i, _mm256_add_pd(hit, miss));
  }
  for (; i < n; ++i) out[i] = m * row[i] + off * (1.0 - row[i]);
}

// Vectorised over `answered` with `truth` outermost, so each out lane still
// accumulates in ascending-truth order (the bit-identity requirement).
void CmAnswerDistributionImpl(const double* cm, const double* row, int l,
                              double* out) {
  for (int a = 0; a < l; ++a) out[a] = 0.0;
  for (int t = 0; t < l; ++t) {
    const double* cm_row = cm + static_cast<long>(t) * l;
    const __m256d rt = _mm256_set1_pd(row[t]);
    int a = 0;
    for (; a + 4 <= l; a += 4) {
      const __m256d product = _mm256_mul_pd(_mm256_loadu_pd(cm_row + a), rt);
      _mm256_storeu_pd(out + a, _mm256_add_pd(_mm256_loadu_pd(out + a),
                                              product));
    }
    for (; a < l; ++a) out[a] += cm_row[a] * row[t];
  }
}

}  // namespace

const KernelTable& Avx2Kernels() {
  static const KernelTable table = {
      RowSumImpl,        RowMaxImpl,
      MulRowImpl,        MulRowInPlaceImpl,
      DivRowImpl,        AxpyRowImpl,
      WpAnswerDistributionImpl, CmAnswerDistributionImpl,
  };
  return table;
}

}  // namespace qasca::kernels

#else  // !QASCA_KERNELS_X86

namespace qasca::kernels {

const KernelTable& Avx2Kernels() { return ScalarKernels(); }

}  // namespace qasca::kernels

#endif  // QASCA_KERNELS_X86
