// span-names fixture: spans constructed with a raw string literal and with
// an unregistered identifier must fire; a registered tnames constant must
// not; an allow comment must suppress.

#include "util/telemetry.h"
#include "util/telemetry_names.h"

void Stages(qasca::util::MetricRegistry* registry) {
  qasca::util::Span raw(registry, "raw_stage");  // analyze:expect(span-names)
  qasca::util::Span rogue(registry, kSpanRogue);  // analyze:expect(span-names)
  qasca::util::Span good(registry, qasca::util::tnames::kSpanGood);
  qasca::util::Span hushed(registry, "quiet");  // analyze:allow(span-names)
}
