#ifndef QASCA_UTIL_INVARIANTS_H_
#define QASCA_UTIL_INVARIANTS_H_

#include <span>
#include <string>

#include "util/attributes.h"
#include "util/status.h"

namespace qasca::invariants {

/// Reusable validators for the probabilistic invariants the QASCA machinery
/// depends on. Each returns util::Status::Ok() when the invariant holds and
/// an Internal status with a precise diagnostic otherwise, so call sites can
/// choose their tier:
///
///   QASCA_CHECK_OK(invariants::CheckAssignment(...));   // always on
///   QASCA_DCHECK_OK(invariants::CheckDistributionRow(...));  // debug only
///
/// The validators never abort themselves — the abort decision (and its
/// compile-out in Release) belongs to the QASCA_*CHECK_OK macros.

/// Default absolute tolerance for "sums to one" and "within [0,1]" checks.
/// Posterior rows are produced by normalising O(l)-term products, so the
/// accumulated error is a few ulps; 1e-6 leaves generous slack while still
/// catching any genuine logic error (a dropped term perturbs a row by far
/// more than 1e-6).
inline constexpr double kProbabilityTolerance = 1e-6;

/// Every entry of `row` must lie in [-tolerance, 1 + tolerance] and the
/// entries must sum to 1 within `tolerance` (a probability distribution over
/// labels — one row of Qc / Qw / QX, a prior, or a predicted answer
/// distribution).
QASCA_NODISCARD
util::Status CheckDistributionRow(std::span<const double> row,
                                  double tolerance = kProbabilityTolerance);

/// Row-major `num_labels` x `num_labels` confusion matrix: every row must be
/// a probability distribution (row-stochastic matrix, Section 5.2's CM
/// worker model).
QASCA_NODISCARD
util::Status CheckConfusionMatrix(std::span<const double> matrix,
                                  int num_labels,
                                  double tolerance = kProbabilityTolerance);

/// A candidate set: distinct question indices, each within
/// [0, num_questions).
QASCA_NODISCARD
util::Status CheckCandidateSet(std::span<const int> candidates,
                               int num_questions);

/// A HIT leaving the assignment layer: exactly `k` distinct question ids,
/// each within [0, num_questions).
QASCA_NODISCARD
util::Status CheckAssignment(std::span<const int> selected, int k,
                             int num_questions);

/// Dinkelbach denominator: must be strictly positive over the feasible
/// region, else the objective is undefined (Section 3.2.3's reductions
/// guarantee gamma > 0).
QASCA_NODISCARD
util::Status CheckFractionalDenominator(double denominator);

/// Dinkelbach / Update-algorithm monotonicity: starting from a valid lower
/// bound, each iterate's lambda must be non-decreasing (Theorem 3 /
/// Dinkelbach [12]). `updated` may undershoot `previous` by at most
/// `tolerance` to absorb floating-point dither at the fixed point.
QASCA_NODISCARD
util::Status CheckLambdaMonotone(double previous, double updated,
                                 double tolerance = 1e-9);

/// EM ascent: the (penalized) observed-data log-likelihood must be
/// non-decreasing across E/M rounds. Tolerance is absolute on the
/// log-likelihood scale.
QASCA_NODISCARD
util::Status CheckLogLikelihoodMonotone(double previous, double updated,
                                        double tolerance = 1e-7);

/// Applies CheckDistributionRow to every row of a DistributionMatrix-shaped
/// object (anything exposing num_questions() and Row(i)). Templated so
/// qasca_util does not link against qasca_core.
template <typename Matrix>
QASCA_NODISCARD util::Status CheckDistributionMatrix(const Matrix& q,
                                     double tolerance = kProbabilityTolerance) {
  for (int i = 0; i < q.num_questions(); ++i) {
    util::Status status = CheckDistributionRow(q.Row(i), tolerance);
    if (!status.ok()) {
      return util::Status::Internal("row " + std::to_string(i) + ": " +
                                    status.message());
    }
  }
  return util::Status::Ok();
}

}  // namespace qasca::invariants

#endif  // QASCA_UTIL_INVARIANTS_H_
