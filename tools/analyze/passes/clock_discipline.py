"""Pass `clock-discipline`: platform code never reads a clock directly.

The lifecycle layer (leases, expiry, the event trace) is time-driven, and
its tests replay thousands of seeded events against a virtual clock. That
only works because every time read in src/platform flows through the
injectable util::TickSource (src/util/tick.h): production wires in
SteadyTickSource(), tests wire in a counter they control. A single direct
std::chrono read — even of steady_clock, which the determinism pass
permits elsewhere for telemetry — would make lease deadlines depend on
wall time and the stress harness nondeterministic.

This pass therefore bans `std::chrono` (and the <chrono>/<ctime> includes
that invite it) in src/platform entirely. Code that genuinely needs a real
clock belongs in src/util behind a TickSource factory; suppress with
`// analyze:allow(clock-discipline)` only with a comment explaining why an
injected tick source cannot work.
"""

from __future__ import annotations

import re

from ..base import ERROR, Finding, SourceFile, SourceTree

BANNED = [
    (re.compile(r"std::chrono\b"),
     "direct std::chrono use — inject a util::TickSource instead"),
    (re.compile(r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::"
                r"\s*now\s*\("),
     "direct clock read — inject a util::TickSource instead"),
]

# Includes that invite direct clock reads; checked against the semantic
# frontend's include model rather than a separate regex.
BANNED_INCLUDES = {
    "chrono": "<chrono> include — platform code takes time from "
              "util::TickSource",
    "ctime": "<ctime> include — platform code takes time from "
             "util::TickSource",
}


class ClockDisciplinePass:
    name = "clock-discipline"
    description = ("no direct std::chrono clock reads in src/platform; all "
                   "time flows through the injectable util::TickSource so "
                   "lease/lifecycle behavior replays deterministically")
    severity = ERROR
    roots = ("src/platform",)

    def run(self, tree: SourceTree) -> list[Finding]:
        findings: list[Finding] = []
        for source in tree.files(self.roots):
            findings.extend(self._check(tree, source))
        return findings

    def _check(self, tree: SourceTree,
               source: SourceFile) -> list[Finding]:
        findings = []
        for include in tree.model(source).includes:
            why = BANNED_INCLUDES.get(include.target)
            if why is not None and include.angled:
                findings.append(Finding(
                    pass_name=self.name, severity=self.severity,
                    path=source.rel, line=include.line,
                    message=f"clock discipline: {why}"))
        for pattern, why in BANNED:
            for match in pattern.finditer(source.code):
                findings.append(Finding(
                    pass_name=self.name, severity=self.severity,
                    path=source.rel, line=source.line_of(match.start()),
                    message=f"clock discipline: {why}"))
        return findings
