#ifndef QASCA_CORE_ASSIGNMENT_ASSIGNMENT_H_
#define QASCA_CORE_ASSIGNMENT_ASSIGNMENT_H_

#include <vector>

#include "core/distribution_matrix.h"
#include "core/types.h"

namespace qasca::util {
class MetricRegistry;
class ThreadPool;
}  // namespace qasca::util

namespace qasca {

/// Inputs common to every task-assignment call (Definition 1): the current
/// distribution matrix Qc, the estimated distribution matrix Qw for the
/// requesting worker, the worker's candidate set S^w (questions not yet
/// assigned to them), and the HIT size k.
///
/// Rows of `estimated` outside `candidates` are never read.
struct AssignmentRequest {
  const DistributionMatrix* current = nullptr;    // Qc
  const DistributionMatrix* estimated = nullptr;  // Qw
  /// The candidate set S^w: distinct question indices, any order.
  std::vector<QuestionIndex> candidates;
  int k = 0;
  /// Optional worker pool for the per-candidate scans (benefit computation,
  /// Dinkelbach numerator/denominator accumulation). nullptr runs serial;
  /// any pool size produces bit-identical selections (fixed-grain chunking,
  /// chunk-ordered reductions — see util/thread_pool.h).
  util::ThreadPool* pool = nullptr;
  /// Optional telemetry registry (stage spans, candidate/iteration
  /// counters); nullptr or disabled records nothing and never influences
  /// the selection.
  util::MetricRegistry* telemetry = nullptr;
};

/// Outcome of an assignment: the chosen questions (ascending order) plus the
/// objective value F(Q^{X*}) the optimizer converged to and iteration
/// diagnostics for the efficiency experiments (Figure 4).
struct AssignmentResult {
  std::vector<QuestionIndex> selected;
  /// The optimal objective value (Accuracy*(Q^X*, R^X*) or delta* for
  /// F-score*).
  double objective = 0.0;
  /// Outer iterations (the paper's u; 1 for the Accuracy top-k algorithm).
  int outer_iterations = 0;
  /// Total inner Dinkelbach iterations across all Update calls (the paper's
  /// u*v bound; 0 for Accuracy).
  int inner_iterations = 0;
};

/// Builds the assignment distribution matrix Q^X (Eq. 1): rows of `current`
/// with the rows of `selected` questions replaced by the worker's estimated
/// rows.
DistributionMatrix BuildAssignmentMatrix(
    const DistributionMatrix& current, const DistributionMatrix& estimated,
    const std::vector<QuestionIndex>& selected);

/// Validates structural invariants of `request` (matching shapes, distinct
/// in-range candidates, 0 < k <= |S^w|). Aborts on violation; assignment
/// entry points call this first.
void ValidateRequest(const AssignmentRequest& request);

}  // namespace qasca

#endif  // QASCA_CORE_ASSIGNMENT_ASSIGNMENT_H_
