#include "util/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace qasca::util {
namespace {

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(RngTest, SampleWeightedRespectsZeroWeights) {
  Rng rng(4);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.SampleWeighted(weights), 1);
  }
}

TEST(RngTest, SampleWeightedMatchesDistribution) {
  Rng rng(5);
  std::vector<double> weights = {1.0, 3.0};  // 25% / 75%
  int counts[2] = {0, 0};
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) ++counts[rng.SampleWeighted(weights)];
  double fraction = static_cast<double>(counts[1]) / trials;
  EXPECT_NEAR(fraction, 0.75, 0.02);
}

TEST(RngTest, SampleWeightedUnnormalizedWeightsWork) {
  Rng rng(6);
  std::vector<double> weights = {100.0, 300.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.SampleWeighted(weights)];
  EXPECT_NEAR(counts[1] / 20000.0, 0.75, 0.02);
}

TEST(RngTest, SampleWithoutReplacementProducesDistinct) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> sample = rng.SampleWithoutReplacement(20, 8);
    EXPECT_EQ(sample.size(), 8u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng rng(8);
  std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleWithoutReplacementIsUniform) {
  // Each element of a population of 4 should appear in a sample of 2 with
  // probability 1/2.
  Rng rng(9);
  int hits[4] = {0, 0, 0, 0};
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (int v : rng.SampleWithoutReplacement(4, 2)) ++hits[v];
  }
  for (int v = 0; v < 4; ++v) {
    EXPECT_NEAR(hits[v] / static_cast<double>(trials), 0.5, 0.02);
  }
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(10);
  std::vector<int> perm = rng.Permutation(16);
  std::vector<int> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.Fork();
  // The child should not replay the parent's stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Uniform() == child.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, GaussianMeanAndSpread) {
  Rng rng(12);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    double g = rng.Gaussian(2.0, 0.5);
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / trials;
  double variance = sum_sq / trials - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(variance, 0.25, 0.02);
}

}  // namespace
}  // namespace qasca::util
