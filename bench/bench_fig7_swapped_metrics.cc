// Reproduces Figure 7(a)-(e) (Appendix I): the same five applications with
// the evaluation metrics swapped — F-score on the Accuracy datasets (FS,
// SA) and Accuracy on the F-score datasets (ER, PSA, NSA). QASCA adapts its
// assignment objective to the configured metric and should stay on top.

#include <cstdio>

#include "bench/experiment_driver.h"
#include "util/table.h"

namespace qasca {
namespace {

std::vector<ApplicationSpec> SwappedApps() {
  std::vector<ApplicationSpec> apps = PaperApplications();
  // FS: F-score for ">=" (label 1), alpha = 0.5.
  apps[0].metric = MetricSpec::FScore(0.5, /*target_label=*/1);
  // SA: F-score for "positive" (label 0), alpha = 0.5.
  apps[1].metric = MetricSpec::FScore(0.5, /*target_label=*/0);
  // ER / PSA / NSA: Accuracy.
  apps[2].metric = MetricSpec::Accuracy();
  apps[3].metric = MetricSpec::Accuracy();
  apps[4].metric = MetricSpec::Accuracy();
  return apps;
}

void RunAll() {
  const int seeds = bench::SeedsFromEnv(1);
  std::vector<SystemFactory> systems = DefaultSystems();
  const char* panel = "abcde";
  std::vector<bench::AveragedTraces> all;
  std::vector<ApplicationSpec> apps = SwappedApps();
  for (size_t a = 0; a < apps.size(); ++a) {
    char title[128];
    std::snprintf(
        title, sizeof(title),
        "Figure 7(%c) — %s with swapped metric (%s), mean of %d run(s)",
        panel[a], apps[a].name.c_str(),
        apps[a].metric.kind == MetricSpec::Kind::kAccuracy ? "Accuracy"
                                                           : "F-score 0.5",
        seeds);
    util::PrintSection(title);
    bench::AveragedTraces traces = bench::RunAveraged(
        apps[a], systems, seeds, /*checkpoints=*/10,
        /*track_estimation_deviation=*/false);
    bench::PrintQualitySeries(traces);
    all.push_back(std::move(traces));
  }

  util::PrintSection("Figure 7 summary — final quality under swapped metrics");
  std::vector<std::string> header = {"Dataset"};
  for (const SystemFactory& factory : systems) header.push_back(factory.name);
  util::Table table(header);
  for (const bench::AveragedTraces& traces : all) {
    table.AddRow().Cell(traces.spec.name);
    for (double quality : traces.final_quality) table.Percent(quality, 2);
  }
  table.Print();
  std::printf(
      "Expected shape: same ordering as Figure 5 — QASCA's advantage is\n"
      "metric-agnostic because the assignment objective follows the\n"
      "configured metric.\n");
}

}  // namespace
}  // namespace qasca

int main() {
  qasca::RunAll();
  return 0;
}
