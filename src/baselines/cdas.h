#ifndef QASCA_BASELINES_CDAS_H_
#define QASCA_BASELINES_CDAS_H_

#include <string>
#include <vector>

#include "platform/strategy.h"

namespace qasca {

/// CDAS (Liu et al., PVLDB 2012 [30]) as characterised in Section 6.2.1: a
/// quality-sensitive answering model measures the confidence of each
/// question's current result and *terminates* questions whose results are
/// already confident; the HIT is filled with k non-terminated questions.
///
/// Confidence of question i is the posterior probability of its current
/// result, max_j Qc_{i,j}. Questions reaching `confidence_threshold` are
/// terminated. Among live questions the least-answered are preferred
/// (CDAS's round-based distribution spreads answers evenly); if fewer than
/// k are live, terminated questions with the fewest answers fill the rest.
class CdasStrategy final : public AssignmentStrategy {
 public:
  explicit CdasStrategy(double confidence_threshold = 0.9)
      : confidence_threshold_(confidence_threshold) {}

  std::string name() const override { return "CDAS"; }

  std::vector<QuestionIndex> SelectQuestions(
      const StrategyContext& context,
      const std::vector<QuestionIndex>& candidates, int k) override;

 private:
  double confidence_threshold_;
};

}  // namespace qasca

#endif  // QASCA_BASELINES_CDAS_H_
