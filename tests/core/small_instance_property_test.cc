// Exhaustive small-instance property tests (ISSUE 5): on every generated
// instance with n <= 6 questions and l <= 3 labels,
//  * the Theorem-2/Algorithm-1 F-score* result selection must attain the
//    same F-score* as brute-force enumeration over ALL l^n label vectors
//    (at most 729 per instance), and the thresholded R* must itself
//    evaluate to the returned lambda*;
//  * the Top-K Benefit selection must attain the same Accuracy* objective
//    as brute-force enumeration over all C(|S^w|, k) assignments.
// Instances are generated from counter-based SplitMix64 streams, so the
// sweep is identical on every platform and run.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/assignment/brute_force.h"
#include "core/assignment/topk_benefit.h"
#include "core/metrics/accuracy.h"
#include "core/metrics/fscore.h"
#include "util/rng.h"

namespace qasca {
namespace {

// A random but deterministic n x l distribution matrix: rows drawn from the
// seed's SplitMix64 stream and normalized.
DistributionMatrix RandomMatrix(int n, int l, uint64_t seed) {
  DistributionMatrix q(n, l);
  util::SplitMix64 stream(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> row(static_cast<size_t>(l));
    double total = 0.0;
    for (double& cell : row) {
      cell = 0.05 + stream.NextDouble();  // bounded away from 0
      total += cell;
    }
    for (double& cell : row) cell /= total;
    q.SetRow(i, row);
  }
  return q;
}

// All l^n label vectors, visited by counting in base l.
template <typename Visit>
void ForEachLabelVector(int n, int l, Visit visit) {
  ResultVector result(static_cast<size_t>(n), 0);
  while (true) {
    visit(result);
    int pos = 0;
    while (pos < n) {
      if (++result[static_cast<size_t>(pos)] < l) break;
      result[static_cast<size_t>(pos)] = 0;
      ++pos;
    }
    if (pos == n) return;
  }
}

TEST(SmallInstancePropertyTest, FScoreResultSelectionMatchesBruteForce) {
  for (int n = 1; n <= 6; ++n) {
    for (int l = 2; l <= 3; ++l) {
      for (const double alpha : {0.3, 0.5, 0.7}) {
        for (uint64_t seed = 1; seed <= 3; ++seed) {
          const DistributionMatrix q = RandomMatrix(
              n, l, seed * 1000003ull + static_cast<uint64_t>(n * 10 + l));
          for (LabelIndex target = 0; target < std::min(l, 2); ++target) {
            const FScoreQualityResult algorithm =
                SolveFScoreQuality(q, alpha, target);
            double best = 0.0;
            ForEachLabelVector(n, l, [&](const ResultVector& result) {
              best = std::max(best, FScoreStar(q, result, alpha, target));
            });
            // Theorem 2: lambda* is the global optimum over all label
            // vectors, and the thresholded R* attains it.
            EXPECT_NEAR(algorithm.lambda, best, 1e-9)
                << "n=" << n << " l=" << l << " alpha=" << alpha
                << " seed=" << seed << " target=" << target;
            EXPECT_NEAR(
                FScoreStar(q, algorithm.optimal_result, alpha, target),
                best, 1e-9);
          }
        }
      }
    }
  }
}

TEST(SmallInstancePropertyTest, TopKBenefitMatchesBruteForceBestK) {
  AccuracyMetric metric;
  for (int n = 2; n <= 6; ++n) {
    for (int l = 2; l <= 3; ++l) {
      for (int k = 1; k <= std::min(n, 3); ++k) {
        for (uint64_t seed = 1; seed <= 4; ++seed) {
          const uint64_t base =
              seed * 6364136223846793005ull + static_cast<uint64_t>(n * l);
          const DistributionMatrix qc = RandomMatrix(n, l, base);
          const DistributionMatrix qw = RandomMatrix(n, l, base ^ 0x5bd1e995);
          AssignmentRequest request;
          request.current = &qc;
          request.estimated = &qw;
          request.candidates.resize(static_cast<size_t>(n));
          for (int i = 0; i < n; ++i) request.candidates[i] = i;
          request.k = k;

          const AssignmentResult fast = AssignTopKBenefit(request);
          const AssignmentResult exact = AssignBruteForce(request, metric);
          // Ties between equal-benefit questions may pick different sets,
          // but the attained objective must be the brute-force optimum.
          EXPECT_NEAR(fast.objective, exact.objective, 1e-9)
              << "n=" << n << " l=" << l << " k=" << k << " seed=" << seed;
          EXPECT_EQ(static_cast<int>(fast.selected.size()), k);
        }
      }
    }
  }
}

}  // namespace
}  // namespace qasca
