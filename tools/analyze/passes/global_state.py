"""Pass `global-state`: decision layers carry no mutable ambient state.

Multi-app readiness (ROADMAP: several crowdsourcing apps served by one
process) requires that everything an Engine decision depends on lives in
an object the caller owns — two apps sharing a mutable namespace-scope
variable, function-local static, or thread_local in src/core, src/model or
src/platform would couple their runs (and race, since pool workers cross
TUs). The frontend records every such definition that is not
const/constexpr; each one is a finding.

Legitimate immutable-after-init singletons (e.g. the kernel dispatch table
resolved once from CPUID) stay, justified in place with
`// analyze:allow(global-state)`. util/ is exempt: the telemetry and
failpoint registries are process-wide services by design and carry their
own locks.
"""

from __future__ import annotations

from ..base import ERROR, Finding, SourceTree

_KIND_DETAIL = {
    "namespace-scope": "a mutable namespace-scope variable",
    "static-local": "a mutable function-local static",
    "thread-local": "a thread_local variable",
}


class GlobalStatePass:
    name = "global-state"
    description = ("mutable namespace-scope / static-local / thread_local "
                   "state is banned in src/core, src/model, src/platform")
    severity = ERROR
    roots = ("src/core", "src/model", "src/platform")

    def run(self, tree: SourceTree) -> list[Finding]:
        findings: list[Finding] = []
        for source in tree.files(self.roots):
            model = tree.model(source)
            for var in model.globals:
                detail = _KIND_DETAIL.get(var.kind, var.kind)
                findings.append(Finding(
                    pass_name=self.name, severity=self.severity,
                    path=source.rel, line=var.line,
                    message=(f"`{var.name}` is {detail} in a decision "
                             "layer — ambient state couples apps sharing "
                             "the process; move it into an owned object, "
                             "make it constexpr, or justify an immutable-"
                             "after-init singleton with "
                             "analyze:allow(global-state)")))
        return findings
