#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "platform/engine.h"
#include "platform/qasca_strategy.h"

namespace qasca {
namespace {

// The PR 2 determinism contract: AppConfig::num_threads parallelises the
// hot kernels but must never change a single assignment decision. These
// tests drive full engine runs at 1, 2 and 8 threads with identical inputs
// and assert byte-identical outcomes — selected HITs, fitted EM parameters,
// the final Qc and the final quality — across both worker-model kinds and
// both assignment engines (Top-K Benefit for Accuracy*, Dinkelbach for
// F-score*).

// Deterministic pseudo-noisy worker: the answer depends only on (worker,
// question, truth), so every engine configuration replays the identical
// answer stream. ~25% of answers are wrong.
LabelIndex SimulatedAnswer(WorkerId worker, QuestionIndex question,
                           LabelIndex truth, int num_labels) {
  uint64_t h = (static_cast<uint64_t>(worker) * 1000003u +
                static_cast<uint64_t>(question) + 1) *
               0x9e3779b97f4a7c15ull;
  h ^= h >> 31;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  if (h % 100 < 25) {
    return static_cast<LabelIndex>(
        (static_cast<uint64_t>(truth) + 1 + h % (num_labels - 1)) %
        num_labels);
  }
  return truth;
}

// Everything observable about one engine run, in comparable form.
struct RunRecord {
  std::vector<QuestionIndex> selections;  // every selected question, in order
  std::vector<double> qc;                 // final Qc, row-major
  std::vector<double> prior;
  // Worker models in WorkerId order, flattened to confusion matrices so WP
  // and CM compare through the same representation.
  std::map<WorkerId, std::vector<double>> workers;
  double quality = 0.0;
  double last_drift = 0.0;
  int full_refits = 0;
  int incremental = 0;
};

// gtest ASSERTs require a void function, so the record comes back through
// an out-parameter.
void RunEngine(const MetricSpec& metric, WorkerModel::Kind kind,
               int num_threads, int em_refresh_interval,
               bool force_final_refit, RunRecord* record_out,
               bool telemetry_enabled = false,
               bool observability_enabled = false) {
  AppConfig config;
  config.name = "determinism";
  config.num_questions = 36;
  config.num_labels = 2;
  config.questions_per_hit = 4;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * 24;  // 24 HITs
  config.metric = metric;
  config.worker_kind = kind;
  config.em.max_iterations = 15;
  config.num_threads = num_threads;
  config.em_refresh_interval = em_refresh_interval;
  config.telemetry_enabled = telemetry_enabled;
  if (observability_enabled) {
    // The full PR 8 observability stack: flight recorder, decision
    // provenance and the SLO tracker, all live at once.
    config.flight_recorder_enabled = true;
    config.flight_recorder_capacity = 4096;
    config.provenance_enabled = true;
    config.provenance_capacity = 64;
    config.slo_p95_assign_ms = 5.0;
    config.latency_window_samples = 64;
  }

  GroundTruthVector truth(config.num_questions);
  for (int q = 0; q < config.num_questions; ++q) {
    truth[q] = q % config.num_labels;
  }

  TaskAssignmentEngine engine(config, std::make_unique<QascaStrategy>(),
                              /*seed=*/7);
  RunRecord record;
  int round = 0;
  while (!engine.BudgetExhausted()) {
    const WorkerId worker = round++ % 6;
    auto hit = engine.RequestHit(worker);
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    std::vector<LabelIndex> labels;
    labels.reserve(hit->size());
    for (QuestionIndex q : *hit) {
      record.selections.push_back(q);
      labels.push_back(
          SimulatedAnswer(worker, q, truth[q], config.num_labels));
    }
    ASSERT_TRUE(engine.CompleteHit(worker, labels).ok());
  }
  if (force_final_refit) {
    engine.ForceFullEmRefit();
  }

  const DistributionMatrix& qc = engine.database().current();
  for (int i = 0; i < qc.num_questions(); ++i) {
    for (int j = 0; j < qc.num_labels(); ++j) {
      record.qc.push_back(qc.At(i, j));
    }
  }
  const EmResult& parameters = engine.database().parameters();
  record.prior = parameters.prior;
  for (const auto& [id, model] : parameters.workers) {
    record.workers[id] = model.AsConfusionMatrix();
  }
  record.quality = engine.QualityAgainstTruth(truth);
  record.last_drift = engine.last_refresh_drift();
  record.full_refits = engine.full_em_refits();
  record.incremental = engine.incremental_refreshes();
  *record_out = std::move(record);
}

RunRecord MustRun(const MetricSpec& metric, WorkerModel::Kind kind,
                  int num_threads, int em_refresh_interval,
                  bool force_final_refit = false,
                  bool telemetry_enabled = false,
                  bool observability_enabled = false) {
  RunRecord record;
  RunEngine(metric, kind, num_threads, em_refresh_interval,
            force_final_refit, &record, telemetry_enabled,
            observability_enabled);
  return record;
}

// Byte-identical comparison: EXPECT_EQ on doubles is exact equality, which
// is the contract — not a tolerance.
void ExpectIdentical(const RunRecord& a, const RunRecord& b,
                     const std::string& what) {
  EXPECT_EQ(a.selections, b.selections) << what << ": selected HITs differ";
  EXPECT_EQ(a.qc, b.qc) << what << ": final Qc differs";
  EXPECT_EQ(a.prior, b.prior) << what << ": fitted prior differs";
  EXPECT_EQ(a.workers, b.workers) << what << ": worker models differ";
  EXPECT_EQ(a.quality, b.quality) << what << ": final quality differs";
}

struct Scenario {
  std::string name;
  MetricSpec metric;
  WorkerModel::Kind kind;
};

std::vector<Scenario> AllScenarios() {
  return {
      {"accuracy/wp", MetricSpec::Accuracy(),
       WorkerModel::Kind::kWorkerProbability},
      {"accuracy/cm", MetricSpec::Accuracy(),
       WorkerModel::Kind::kConfusionMatrix},
      {"fscore/wp", MetricSpec::FScore(0.5, 0),
       WorkerModel::Kind::kWorkerProbability},
      {"fscore/cm", MetricSpec::FScore(0.5, 0),
       WorkerModel::Kind::kConfusionMatrix},
  };
}

TEST(DeterminismTest, ThreadCountNeverChangesDecisions) {
  for (const Scenario& s : AllScenarios()) {
    const RunRecord serial = MustRun(s.metric, s.kind, /*num_threads=*/1,
                                       /*em_refresh_interval=*/1, false);
    for (int threads : {2, 8}) {
      const RunRecord parallel = MustRun(s.metric, s.kind, threads,
                                           /*em_refresh_interval=*/1, false);
      ExpectIdentical(serial, parallel,
                      s.name + " @ " + std::to_string(threads) + " threads");
    }
    // Sanity: the run did something nontrivial.
    EXPECT_EQ(serial.selections.size(), 24u * 4u) << s.name;
    EXPECT_GT(serial.quality, 0.5) << s.name;
  }
}

TEST(DeterminismTest, ThreadCountNeverChangesIncrementalRuns) {
  // The incremental-refresh path must be just as thread-independent as the
  // full-refit path.
  for (const Scenario& s : AllScenarios()) {
    const RunRecord serial = MustRun(s.metric, s.kind, /*num_threads=*/1,
                                       /*em_refresh_interval=*/4, false);
    const RunRecord parallel = MustRun(s.metric, s.kind, /*num_threads=*/8,
                                         /*em_refresh_interval=*/4, false);
    ExpectIdentical(serial, parallel, s.name + " @ interval 4");
    EXPECT_GT(serial.incremental, 0) << s.name;
  }
}

TEST(DeterminismTest, IncrementalAgreesWithFullRefit) {
  // Between full refits the incremental path re-derives only the touched
  // posterior rows. Forcing a final full refit exercises the engine's
  // always-on agreement invariant (it aborts past em_drift_tolerance) and
  // lets us assert the measured drift is small in absolute terms too.
  for (const Scenario& s : AllScenarios()) {
    const RunRecord record = MustRun(s.metric, s.kind, /*num_threads=*/2,
                                       /*em_refresh_interval=*/5, true);
    EXPECT_GT(record.incremental, 0) << s.name;
    EXPECT_GT(record.full_refits, 0) << s.name;
    // The default tolerance is 0.95; the final forced refit follows at most
    // four incremental completions, so its drift stays well below that.
    EXPECT_LT(record.last_drift, 0.75) << s.name;
  }
}

TEST(DeterminismTest, TelemetryNeverChangesDecisions) {
  // Telemetry observes the engine but must never perturb it: spans and
  // counters touch no RNG stream and no model state, so enabling the
  // registry leaves every decision byte-identical — serial and threaded,
  // full-refit and incremental.
  for (const Scenario& s : AllScenarios()) {
    const RunRecord off = MustRun(s.metric, s.kind, /*num_threads=*/1,
                                    /*em_refresh_interval=*/4, false,
                                    /*telemetry_enabled=*/false);
    const RunRecord on = MustRun(s.metric, s.kind, /*num_threads=*/1,
                                   /*em_refresh_interval=*/4, false,
                                   /*telemetry_enabled=*/true);
    ExpectIdentical(off, on, s.name + " telemetry on vs off");
    const RunRecord on_threaded =
        MustRun(s.metric, s.kind, /*num_threads=*/8,
                /*em_refresh_interval=*/4, false, /*telemetry_enabled=*/true);
    ExpectIdentical(off, on_threaded,
                    s.name + " telemetry on @ 8 threads vs off serial");
  }
}

TEST(DeterminismTest, TracingNeverChangesDecisions) {
  // The flight recorder, provenance log and SLO tracker observe every
  // request, but none of them may perturb one: trace ids advance whether or
  // not a recorder exists, recorder appends touch no RNG stream, and
  // provenance is filled from the decision after it is made. Decisions must
  // stay byte-identical with the full stack on — serial and threaded.
  for (const Scenario& s : AllScenarios()) {
    const RunRecord off = MustRun(s.metric, s.kind, /*num_threads=*/1,
                                    /*em_refresh_interval=*/4, false,
                                    /*telemetry_enabled=*/false,
                                    /*observability_enabled=*/false);
    const RunRecord on = MustRun(s.metric, s.kind, /*num_threads=*/1,
                                   /*em_refresh_interval=*/4, false,
                                   /*telemetry_enabled=*/false,
                                   /*observability_enabled=*/true);
    ExpectIdentical(off, on, s.name + " observability on vs off");
    const RunRecord on_threaded = MustRun(
        s.metric, s.kind, /*num_threads=*/8, /*em_refresh_interval=*/4,
        false, /*telemetry_enabled=*/true, /*observability_enabled=*/true);
    ExpectIdentical(off, on_threaded,
                    s.name + " observability+telemetry @ 8 threads");
  }
}

TEST(DeterminismTest, TelemetryCountsMatchEngineCounters) {
  // The registry's counters must agree with the engine's own bookkeeping —
  // the telemetry layer is a second witness, not a second truth.
  AppConfig config;
  config.num_questions = 36;
  config.num_labels = 2;
  config.questions_per_hit = 4;
  config.pay_per_hit = 0.02;
  config.budget = 0.02 * 12;
  config.em_refresh_interval = 4;
  config.telemetry_enabled = true;
  GroundTruthVector truth(config.num_questions);
  for (int q = 0; q < config.num_questions; ++q) {
    truth[q] = q % config.num_labels;
  }
  TaskAssignmentEngine engine(config, std::make_unique<QascaStrategy>(), 7);
  int round = 0;
  while (!engine.BudgetExhausted()) {
    const WorkerId worker = round++ % 6;
    auto hit = engine.RequestHit(worker);
    ASSERT_TRUE(hit.ok());
    std::vector<LabelIndex> labels;
    for (QuestionIndex q : *hit) {
      labels.push_back(SimulatedAnswer(worker, q, truth[q],
                                       config.num_labels));
    }
    ASSERT_TRUE(engine.CompleteHit(worker, labels).ok());
  }
  const util::TelemetrySnapshot snapshot = engine.TelemetrySnapshot();
  EXPECT_TRUE(snapshot.enabled);
  auto counter = [&snapshot](std::string_view name) -> int64_t {
    for (const util::CounterSnapshot& c : snapshot.counters) {
      if (c.name == name) return c.value;
    }
    return -1;
  };
  EXPECT_EQ(counter("engine.hits_assigned"), engine.assigned_hits());
  EXPECT_EQ(counter("engine.hits_completed"), engine.completed_hits());
  EXPECT_EQ(counter("em.full_refits"), engine.full_em_refits());
  EXPECT_EQ(counter("em.incremental_refreshes"),
            engine.incremental_refreshes());
  // Every completion records exactly questions_per_hit answers.
  EXPECT_EQ(counter("db.answers_recorded"),
            int64_t{engine.completed_hits()} * config.questions_per_hit);
  // Each span fired at least once per HIT cycle.
  auto latency_count = [&snapshot](std::string_view name) -> int64_t {
    for (const util::LatencySnapshot& l : snapshot.latencies) {
      if (l.name == name) return l.count;
    }
    return -1;
  };
  EXPECT_EQ(latency_count("assign_hit"), engine.assigned_hits());
  EXPECT_EQ(latency_count("complete_hit"), engine.completed_hits());
  EXPECT_EQ(latency_count("estimate_qw"), engine.assigned_hits());
  EXPECT_EQ(latency_count("em_full_refit"), engine.full_em_refits());
}

TEST(DeterminismTest, IncrementalQualityTracksFullRefits) {
  // Refitting every 4th completion instead of every completion must not
  // collapse end quality — that is the whole point of the incremental path.
  for (const Scenario& s : AllScenarios()) {
    const RunRecord full = MustRun(s.metric, s.kind, 1, 1, false);
    const RunRecord incremental = MustRun(s.metric, s.kind, 1, 4, false);
    EXPECT_GT(incremental.quality, full.quality - 0.15) << s.name;
    EXPECT_EQ(incremental.full_refits + incremental.incremental, 24)
        << s.name;
  }
}

}  // namespace
}  // namespace qasca
