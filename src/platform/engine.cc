#include "platform/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "core/kernels/kernels.h"
#include "model/posterior.h"
#include "util/failpoint.h"
#include "util/invariants.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/telemetry_names.h"

namespace {

/// Deadline value of a lease that never expires (lease_timeout_ticks == 0).
constexpr uint64_t kLeaseNever = std::numeric_limits<uint64_t>::max();

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  hash ^= value;
  hash *= kFnvPrime;
  return hash;
}

uint64_t BitsOf(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

namespace qasca {

TaskAssignmentEngine::TaskAssignmentEngine(
    AppConfig config, std::unique_ptr<AssignmentStrategy> strategy,
    uint64_t seed)
    : config_(std::move(config)),
      // The flight recorder and the SLO tracker ride the span/instrument
      // machinery, so either one needs the registry live even when plain
      // telemetry is off. Decisions are byte-identical either way
      // (DeterminismTest.TracingNeverChangesDecisions).
      telemetry_(config_.telemetry_enabled || config_.flight_recorder_enabled ||
                 config_.slo_p95_assign_ms > 0.0),
      strategy_(std::move(strategy)),
      metric_(config_.metric.Make()),
      database_(config_.num_questions, config_.num_labels),
      rng_(seed) {
  util::Status status = config_.Validate();
  QASCA_CHECK(status.ok()) << status.ToString();
  QASCA_CHECK(strategy_ != nullptr);
  config_.em.worker_kind = config_.worker_kind;
  if (config_.flight_recorder_enabled) {
    flight_recorder_ =
        std::make_unique<util::FlightRecorder>(config_.flight_recorder_capacity);
    // Attached before any worker thread exists — the registry's recorder
    // pointer is written exactly once, here.
    telemetry_.AttachFlightRecorder(flight_recorder_.get());
  }
  if (config_.provenance_enabled) {
    provenance_ = std::make_unique<ProvenanceLog>(config_.provenance_capacity);
  }
  if (config_.slo_p95_assign_ms > 0.0) {
    util::SloTracker::Instruments slo_instruments;
    slo_instruments.window_name = util::tnames::kWindowAssignHit;
    slo_instruments.over_target_name = util::tnames::kSloAssignOverTarget;
    slo_instruments.breaches_name = util::tnames::kSloAssignP95Breaches;
    slo_instruments.window_p95_name = util::tnames::kSloAssignWindowP95Ms;
    util::SloTracker::Options slo_options;
    slo_options.target_p95_seconds = config_.slo_p95_assign_ms * 1e-3;
    slo_options.window = config_.latency_window_samples;
    assign_slo_ = std::make_unique<util::SloTracker>(
        &telemetry_, slo_instruments, slo_options);
  }
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
    pool_->AttachTelemetry(&telemetry_);
  }
  if (!config_.persistence_path.empty()) {
    journal_ = std::make_unique<LifecycleJournal>(config_.persistence_path);
    journal_->AttachTelemetry(&telemetry_);
  }
  // Arms any fault plan in the QASCA_FAILPOINTS environment variable; a
  // no-op when unset or when fail points are compiled out.
  util::FailPoints::Global().ArmFromEnv();
  database_.AttachTelemetry(&telemetry_);
  instruments_.hits_assigned =
      telemetry_.GetCounter(util::tnames::kHitsAssigned);
  instruments_.hits_completed =
      telemetry_.GetCounter(util::tnames::kHitsCompleted);
  instruments_.em_full_refits =
      telemetry_.GetCounter(util::tnames::kEmFullRefits);
  instruments_.em_incremental_refreshes =
      telemetry_.GetCounter(util::tnames::kEmIncrementalRefreshes);
  instruments_.lease_expired =
      telemetry_.GetCounter(util::tnames::kHitLeaseExpired);
  instruments_.questions_requeued =
      telemetry_.GetCounter(util::tnames::kHitQuestionsRequeued);
  instruments_.duplicate_dropped =
      telemetry_.GetCounter(util::tnames::kHitDuplicateDropped);
  instruments_.late_completion_rejected =
      telemetry_.GetCounter(util::tnames::kHitLateCompletionRejected);
  instruments_.journal_events_replayed =
      telemetry_.GetCounter(util::tnames::kJournalEventsReplayed);
  instruments_.open_hits = telemetry_.GetGauge(util::tnames::kOpenHits);
  instruments_.remaining_hits =
      telemetry_.GetGauge(util::tnames::kRemainingHits);
  instruments_.last_refresh_drift =
      telemetry_.GetGauge(util::tnames::kLastRefreshDrift);
  likelihood_cache_.AttachCounters(
      telemetry_.GetCounter(util::tnames::kQwLikelihoodCacheHits),
      telemetry_.GetCounter(util::tnames::kQwLikelihoodCacheMisses));
  // Which SIMD tier the runtime dispatcher selected (cpuid-detected, or the
  // QASCA_KERNEL_ISA override) — exported as the numeric kernels::Isa value.
  // The span makes the one-time dispatch resolution visible in traces.
  {
    util::Span isa_span(&telemetry_, util::tnames::kSpanKernelDispatch);
    telemetry_.GetGauge(util::tnames::kKernelIsa)
        ->Set(static_cast<double>(static_cast<int>(kernels::ActiveIsa())));
  }
}

util::StatusOr<std::vector<QuestionIndex>> TaskAssignmentEngine::RequestHit(
    WorkerId worker) {
  if (BudgetExhausted()) {
    return util::Status::ResourceExhausted("budget spent: no HITs left");
  }
  if (open_hits_.contains(worker)) {
    return util::Status::FailedPrecondition(
        "worker already holds an open HIT");
  }
  // Request-scoped trace id: stamped onto every span event this request
  // records and onto its provenance record. Advances unconditionally so
  // observability flags never shift the ids a later request would get.
  const uint64_t trace_id = next_trace_id_++;
  util::TraceScope trace_scope(trace_id);
  // Root span of the HIT-request workflow; every stage below (estimate_qw,
  // topk_scan / fscore_online -> dinkelbach_inner) nests inside it.
  util::Span span(&telemetry_, util::tnames::kSpanAssignHit);
  std::vector<QuestionIndex> candidates = database_.CandidatesFor(worker);
  const int k = config_.questions_per_hit;
  if (static_cast<int>(candidates.size()) < k) {
    return util::Status::NotFound(
        "fewer than k unassigned questions remain for this worker");
  }

  StrategyContext context;
  context.database = &database_;
  context.metric = &config_.metric;
  context.worker = worker;
  const WorkerModel& model = ModelFor(worker);
  context.worker_model = &model;
  context.typical_worker = &TypicalWorker();
  context.rng = &rng_;
  context.pool = pool_.get();
  context.telemetry = &telemetry_;
  context.likelihood_cache =
      config_.likelihood_cache_enabled ? &likelihood_cache_ : nullptr;
  context.use_qw_overlay = config_.use_qw_overlay;
  // Decision provenance: the strategy fills the selection scores and
  // optimizer diagnostics into this stack record; the identity fields are
  // filled below once the assignment is durable. The cache-hit bit comes
  // from the cache's own lifetime counters (telemetry-independent), read as
  // a delta around the strategy call.
  DecisionProvenance provenance_record;
  context.provenance = provenance_ != nullptr ? &provenance_record : nullptr;
  const int64_t cache_hits_before = likelihood_cache_.hits();

  util::Stopwatch stopwatch;
  std::vector<QuestionIndex> selected =
      strategy_->SelectQuestions(context, candidates, k);
  last_assignment_seconds_ = stopwatch.ElapsedSeconds();
  max_assignment_seconds_ =
      std::max(max_assignment_seconds_, last_assignment_seconds_);
  if (assign_slo_ != nullptr) {
    assign_slo_->RecordSeconds(last_assignment_seconds_);
  }

  // Every HIT leaving the engine must be exactly k distinct in-range
  // questions, and each must come from the candidate set the strategy was
  // given. Always on: a malformed HIT reaching the platform corrupts the
  // answer set silently.
  QASCA_CHECK_OK(
      invariants::CheckAssignment(selected, k, config_.num_questions));
#if QASCA_ENABLE_DCHECKS
  // CandidatesFor returns ascending indices, so membership is a binary
  // search — O(k log n) instead of the O(k n) linear scan that used to
  // dominate debug-build latency measurements.
  QASCA_DCHECK(std::is_sorted(candidates.begin(), candidates.end()));
  for (QuestionIndex question : selected) {
    QASCA_DCHECK(
        std::binary_search(candidates.begin(), candidates.end(), question))
        << "strategy selected question " << question
        << " outside the candidate set";
  }
#endif
  // Write-ahead: the event must be durable before any engine state mutates,
  // so a failed append leaves this HIT unassigned everywhere — recovery and
  // the live engine agree the event never happened.
  if (journal_ != nullptr && !replaying_) {
    QASCA_RETURN_IF_ERROR(journal_->AppendAssign(worker, selected));
  }
  database_.MarkAssigned(worker, selected);
  trace_.RecordAssignment(worker, selected);
  OpenHit hit;
  hit.hit_id = next_hit_id_++;
  hit.deadline = config_.lease_timeout_ticks == 0
                     ? kLeaseNever
                     : now_ticks_ + config_.lease_timeout_ticks;
  hit.questions = selected;
  const uint64_t hit_id = hit.hit_id;
  const uint64_t lease_deadline = hit.deadline;
  open_hits_.emplace(worker, std::move(hit));
  // A new HIT supersedes any earlier expired lease: the late-completion
  // rejection window for this worker closes here.
  expired_pending_.erase(worker);
  ++assigned_hits_;
  instruments_.hits_assigned->Add(1);
  instruments_.open_hits->Set(static_cast<double>(open_hits_.size()));
  instruments_.remaining_hits->Set(static_cast<double>(remaining_hits()));
  if (provenance_ != nullptr) {
    // Appended after the assignment is durable, and during replay too:
    // provenance is re-derivable audit state, rebuilt by recovery exactly
    // like the event trace, so counts stay consistent across crashes.
    provenance_record.trace_id = trace_id;
    provenance_record.hit_id = hit_id;
    provenance_record.worker = worker;
    provenance_record.questions = selected;
    provenance_record.candidates = static_cast<int>(candidates.size());
    provenance_record.likelihood_cache_hit =
        likelihood_cache_.hits() > cache_hits_before;
    provenance_record.em_generation =
        static_cast<uint64_t>(full_em_refits_);
    provenance_record.kernel_isa =
        static_cast<int>(kernels::ActiveIsa());
    provenance_record.journal_seq =
        journal_ == nullptr ? 0
        : replaying_       ? replay_journal_seq_
                           : journal_->events().size() - 1;
    provenance_record.now_ticks = now_ticks_;
    provenance_record.lease_deadline = lease_deadline;
    provenance_->Record(std::move(provenance_record));
  }
  return selected;
}

util::Status TaskAssignmentEngine::CompleteHit(
    WorkerId worker, const std::vector<LabelIndex>& labels) {
  auto it = open_hits_.find(worker);
  if (it == open_hits_.end()) {
    // Distinguish the platform failure modes from a plain unknown worker.
    // A redelivered completion callback matches the worker's most recent
    // completed HIT by answer-set hash and is dropped without touching D
    // or EM; a completion arriving after the lease timed out is rejected
    // as late. Both are recoverable platform events, not API misuse.
    auto completed = last_completion_.find(worker);
    if (completed != last_completion_.end() &&
        completed->second.answers_hash == HashLabels(labels)) {
      ++duplicates_dropped_;
      instruments_.duplicate_dropped->Add(1);
      return util::Status::AlreadyExists(
          "duplicate completion of HIT " +
          std::to_string(completed->second.hit_id) + " dropped");
    }
    if (expired_pending_.contains(worker)) {
      ++late_completions_rejected_;
      instruments_.late_completion_rejected->Add(1);
      return util::Status::FailedPrecondition(
          "lease expired before completion; answers rejected");
    }
    return util::Status::NotFound("worker has no open HIT");
  }
  const std::vector<QuestionIndex>& questions = it->second.questions;
  if (labels.size() != questions.size()) {
    return util::Status::InvalidArgument(
        "answer count does not match HIT size");
  }
  for (LabelIndex label : labels) {
    if (label < 0 || label >= config_.num_labels) {
      return util::Status::InvalidArgument("answer label out of range");
    }
  }
  // Fresh trace id for the completion workflow, advanced unconditionally so
  // observability flags can never shift the id sequence (and with it any
  // trace-correlated output) between configurations.
  const uint64_t trace_id = next_trace_id_++;
  util::TraceScope trace_scope(trace_id);
  // Root span of the HIT-completion workflow (steps A-C); em_full_refit /
  // incremental_refresh nest inside it.
  util::Span span(&telemetry_, util::tnames::kSpanCompleteHit);
  // Write-ahead, as in RequestHit: fail before touching D or the lease so a
  // completion the journal lost is a completion that never happened.
  if (journal_ != nullptr && !replaying_) {
    QASCA_RETURN_IF_ERROR(journal_->AppendComplete(worker, labels));
  }
  // Step A: update the answer set D.
  for (size_t q = 0; q < questions.size(); ++q) {
    database_.RecordAnswer(questions[q], worker, labels[q]);
  }
  std::vector<QuestionIndex> touched = it->second.questions;
  last_completion_[worker] =
      CompletedHit{it->second.hit_id, HashLabels(labels)};
  trace_.RecordCompletion(worker, questions, labels);
  open_hits_.erase(it);
  ++completed_hits_;
  ++completions_since_refit_;
  instruments_.hits_completed->Add(1);
  instruments_.open_hits->Set(static_cast<double>(open_hits_.size()));

  // Steps B + C: re-estimate the parameters and refresh Qc. A full EM refit
  // is the dominant per-completion cost at scale, and only the k touched
  // rows' answer sets changed — so between scheduled refits we keep the
  // fitted worker models and prior frozen and re-derive just those rows
  // (Eq. 5). The first fit is always full: before it, the fallback model is
  // a perfect worker and a Bayes update under it would drive rows to 0/1
  // certainty that EM would never assert.
  const bool can_refresh_incrementally =
      config_.em_refresh_interval > 1 &&
      !database_.parameters().workers.empty();
  if (can_refresh_incrementally) {
    util::Span refresh_span(&telemetry_,
                            util::tnames::kSpanIncrementalRefresh);
    // Applied even on a completion that triggers a scheduled refit, so the
    // refit's drift invariant compares a fully-updated incremental Qc —
    // never one stale by this HIT's k new answers.
    const EmResult& parameters = database_.parameters();
    std::vector<double> row;
    row.reserve(static_cast<size_t>(config_.num_labels));
    if (config_.likelihood_cache_enabled) {
      // Table-based refresh: the answering workers' likelihood tables are
      // memoised across completions (models are frozen between refits, so
      // entries stay valid until RunFullEmRefit invalidates them).
      LikelihoodLookup lookup =
          [this, &parameters](WorkerId w) -> const WorkerLikelihoods& {
        return likelihood_cache_.Get(w, parameters.WorkerFor(w));
      };
      for (QuestionIndex question : touched) {
        ComputePosteriorRowWithLikelihoods(
            database_.answers()[static_cast<size_t>(question)],
            parameters.prior, lookup, &row);
        // Always on: an incremental row is the only writer of Qc between
        // refits, so a denormalised one corrupts every later assignment
        // decision without crashing.
        QASCA_CHECK_OK(invariants::CheckDistributionRow(row));
        database_.UpdatePosteriorRow(question, row);
      }
    } else {
      WorkerModelLookup lookup =
          [&parameters](WorkerId w) -> const WorkerModel& {
        return parameters.WorkerFor(w);
      };
      for (QuestionIndex question : touched) {
        ComputePosteriorRowInto(
            database_.answers()[static_cast<size_t>(question)],
            parameters.prior, lookup, &row);
        QASCA_CHECK_OK(invariants::CheckDistributionRow(row));
        database_.UpdatePosteriorRow(question, row);
      }
    }
    incremental_since_refit_ = true;
  }
  if (!can_refresh_incrementally ||
      completions_since_refit_ >= config_.em_refresh_interval) {
    RunFullEmRefit();
  } else {
    ++incremental_refreshes_;
    instruments_.em_incremental_refreshes->Add(1);
  }
  return util::Status::Ok();
}

int TaskAssignmentEngine::Tick(uint64_t ticks) {
  QASCA_CHECK_GT(ticks, 0u);
  now_ticks_ += ticks;
  // Tick has no error channel, and a clock advance the journal lost would
  // recover to different lease deadlines — divergence, the one thing the
  // journal must never allow. Fatal, so the operator restarts into Recover.
  if (journal_ != nullptr && !replaying_) {
    QASCA_CHECK_OK(journal_->AppendTick(ticks));
  }
  // Collect the expired workers with an explicit iterator walk and process
  // them in ascending-id order: expiry requeues questions and is replayed
  // during recovery, so its effects must not depend on unordered_map
  // bucket order (determinism pass, tools/analyze.py).
  std::vector<WorkerId> expired;
  for (auto it = open_hits_.begin(); it != open_hits_.end(); ++it) {
    if (it->second.deadline <= now_ticks_) expired.push_back(it->first);
  }
  std::sort(expired.begin(), expired.end());
  for (WorkerId worker : expired) {
    const OpenHit& hit = open_hits_.at(worker);
    database_.Unassign(worker, hit.questions);
    trace_.RecordLeaseExpiry(worker, hit.questions);
    questions_requeued_ += static_cast<int>(hit.questions.size());
    instruments_.questions_requeued->Add(
        static_cast<int64_t>(hit.questions.size()));
    open_hits_.erase(worker);
    expired_pending_.insert(worker);
    // Refund the budget: the HIT was never completed, so it is never paid
    // for. This keeps assigned_hits == completed_hits + open_hit_count.
    --assigned_hits_;
    ++leases_expired_;
    instruments_.lease_expired->Add(1);
  }
  if (!expired.empty()) {
    instruments_.open_hits->Set(static_cast<double>(open_hits_.size()));
    instruments_.remaining_hits->Set(static_cast<double>(remaining_hits()));
  }
  return static_cast<int>(expired.size());
}

util::Status TaskAssignmentEngine::Recover() {
  if (journal_ == nullptr) {
    return util::Status::FailedPrecondition(
        "recovery requires AppConfig::persistence_path");
  }
  QASCA_CHECK_EQ(assigned_hits_, 0)
      << "Recover must run on a freshly constructed engine";
  QASCA_CHECK_EQ(trace_.size(), 0);
  replaying_ = true;
  replay_journal_seq_ = 0;
  for (const LifecycleJournal::Event& event : journal_->events()) {
    switch (event.kind) {
      case LifecycleJournal::Event::Kind::kAssign: {
        util::StatusOr<std::vector<QuestionIndex>> selected =
            RequestHit(event.worker);
        if (!selected.ok()) {
          replaying_ = false;
          return selected.status();
        }
        if (*selected != event.questions) {
          replaying_ = false;
          return util::Status::Internal(
              "journal replay diverged from the strategy's selection — the "
              "journal was not written by this (config, seed)");
        }
        break;
      }
      case LifecycleJournal::Event::Kind::kComplete: {
        util::Status status = CompleteHit(event.worker, event.labels);
        if (!status.ok()) {
          replaying_ = false;
          return status;
        }
        break;
      }
      case LifecycleJournal::Event::Kind::kTick:
        Tick(event.ticks);
        break;
    }
    instruments_.journal_events_replayed->Add(1);
    ++replay_journal_seq_;
  }
  replaying_ = false;
  return util::Status::Ok();
}

uint64_t TaskAssignmentEngine::HashLabels(
    const std::vector<LabelIndex>& labels) {
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, labels.size());
  for (LabelIndex label : labels) {
    hash = FnvMix(hash, static_cast<uint64_t>(label) + 1);
  }
  return hash;
}

uint64_t TaskAssignmentEngine::StateFingerprint() const {
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, static_cast<uint64_t>(assigned_hits_));
  hash = FnvMix(hash, static_cast<uint64_t>(completed_hits_));
  hash = FnvMix(hash, now_ticks_);
  hash = FnvMix(hash, next_hit_id_);
  // Open leases, folded in ascending worker order (determinism pass: the
  // fingerprint must not depend on bucket layout).
  std::vector<WorkerId> workers;
  for (auto it = open_hits_.begin(); it != open_hits_.end(); ++it) {
    workers.push_back(it->first);
  }
  std::sort(workers.begin(), workers.end());
  for (WorkerId worker : workers) {
    const OpenHit& hit = open_hits_.at(worker);
    hash = FnvMix(hash, static_cast<uint64_t>(worker));
    hash = FnvMix(hash, hit.hit_id);
    hash = FnvMix(hash, hit.deadline);
    for (QuestionIndex q : hit.questions) {
      hash = FnvMix(hash, static_cast<uint64_t>(q) + 1);
    }
  }
  // The answer set D, in per-question arrival order.
  for (int q = 0; q < database_.num_questions(); ++q) {
    const auto& answers = database_.answers()[static_cast<size_t>(q)];
    hash = FnvMix(hash, answers.size());
    for (const Answer& answer : answers) {
      hash = FnvMix(hash, static_cast<uint64_t>(answer.worker));
      hash = FnvMix(hash, static_cast<uint64_t>(answer.label) + 1);
    }
  }
  const DistributionMatrix& qc = database_.current();
  for (int i = 0; i < qc.num_questions(); ++i) {
    for (int j = 0; j < qc.num_labels(); ++j) {
      hash = FnvMix(hash, BitsOf(qc.At(i, j)));
    }
  }
  for (LabelIndex r : CurrentResults()) {
    hash = FnvMix(hash, static_cast<uint64_t>(r) + 1);
  }
  return hash;
}

void TaskAssignmentEngine::ForceFullEmRefit() { RunFullEmRefit(); }

void TaskAssignmentEngine::RunFullEmRefit() {
  util::Span span(&telemetry_, util::tnames::kSpanEmFullRefit);
  const bool check_drift = incremental_since_refit_;
  DistributionMatrix incremental = database_.current();
  database_.SetParameters(
      config_.warm_start_em
          ? RunEmWarmStart(database_.answers(), config_.num_labels,
                           config_.em, database_.parameters(), pool_.get(),
                           &telemetry_)
          : RunEm(database_.answers(), config_.num_labels, config_.em,
                  pool_.get(), &telemetry_));
  // The refreshed Qc is what every later assignment decision reads; a
  // denormalised row here corrupts all of them without crashing.
  QASCA_DCHECK_OK(invariants::CheckDistributionMatrix(database_.current()));
  if (check_drift) {
    // Always-on incremental-agreement invariant: the Qc the incremental
    // path maintained must agree with the full refit within the configured
    // tolerance. A violation means the incremental updates diverged from
    // the model (stale rows, wrong parameters), not floating-point noise.
    const DistributionMatrix& refit = database_.current();
    double drift = 0.0;
    for (int i = 0; i < refit.num_questions(); ++i) {
      for (int j = 0; j < refit.num_labels(); ++j) {
        drift = std::max(drift,
                         std::fabs(refit.At(i, j) - incremental.At(i, j)));
      }
    }
    last_refresh_drift_ = drift;
    max_refresh_drift_ = std::max(max_refresh_drift_, drift);
    instruments_.last_refresh_drift->Set(drift);
    QASCA_CHECK(drift <= config_.em_drift_tolerance)
        << "incremental Qc drifted" << drift << "from the full EM refit"
        << "(tolerance" << config_.em_drift_tolerance << ")";
  }
  ++full_em_refits_;
  instruments_.em_full_refits->Add(1);
  completions_since_refit_ = 0;
  incremental_since_refit_ = false;
  // The fitted worker pool changed; the cached typical worker and every
  // memoised likelihood table are stale.
  typical_worker_.reset();
  likelihood_cache_.Invalidate();
}

ResultVector TaskAssignmentEngine::CurrentResults() const {
  return metric_->OptimalResult(database_.current());
}

double TaskAssignmentEngine::QualityAgainstTruth(
    const GroundTruthVector& truth) const {
  return metric_->EvaluateAgainstTruth(truth, CurrentResults());
}

const WorkerModel& TaskAssignmentEngine::ModelFor(WorkerId worker) const {
  return database_.parameters().WorkerFor(worker);
}

const WorkerModel& TaskAssignmentEngine::TypicalWorker() {
  if (!typical_worker_.has_value()) {
    typical_worker_ = ComputeTypicalWorker();
  }
  return *typical_worker_;
}

WorkerModel TaskAssignmentEngine::ComputeTypicalWorker() const {
  const auto& workers = database_.parameters().workers;
  if (workers.empty()) {
    return WorkerModel::Wp(0.75, config_.num_labels);
  }
  // Fold worker qualities in ascending-id order: the mean feeds assignment
  // decisions through the typical-worker model, so its floating-point
  // association must not depend on unordered_map bucket layout (determinism
  // pass, tools/analyze.py).
  std::vector<WorkerId> ids;
  ids.reserve(workers.size());
  for (const auto& [id, model] : workers) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  double total_quality = 0.0;
  for (WorkerId id : ids) {
    std::vector<double> cm = workers.at(id).AsConfusionMatrix();
    double diagonal = 0.0;
    for (int j = 0; j < config_.num_labels; ++j) {
      diagonal += cm[static_cast<size_t>(j) * config_.num_labels + j];
    }
    total_quality += diagonal / config_.num_labels;
  }
  return WorkerModel::Wp(
      std::clamp(total_quality / static_cast<double>(workers.size()), 0.0,
                 1.0),
      config_.num_labels);
}

}  // namespace qasca
