// Cross-cutting invariance and monotonicity properties of the metric and
// fractional-programming layers — the algebraic facts the paper's proofs
// lean on, checked on random instances.

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/fractional.h"
#include "core/metrics/accuracy.h"
#include "core/metrics/fscore.h"
#include "util/rng.h"

namespace qasca {
namespace {

DistributionMatrix RandomBinary(int n, util::Rng& rng) {
  DistributionMatrix q(n, 2);
  for (int i = 0; i < n; ++i) {
    double p = rng.Uniform();
    q.SetRow(i, std::vector<double>{p, 1.0 - p});
  }
  return q;
}

TEST(InvariantsTest, FScoreStarIsPermutationInvariant) {
  // Shuffling questions together with their results leaves F-score*
  // unchanged (it is a symmetric function of the rows).
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 5 + rng.UniformInt(20);
    DistributionMatrix q = RandomBinary(n, rng);
    ResultVector r(n);
    for (int i = 0; i < n; ++i) r[i] = rng.UniformInt(2);
    double alpha = rng.Uniform(0.05, 0.95);
    double original = FScoreStar(q, r, alpha);

    std::vector<int> perm = rng.Permutation(n);
    DistributionMatrix shuffled(n, 2);
    ResultVector shuffled_r(n);
    for (int i = 0; i < n; ++i) {
      shuffled.SetRow(i, q.Row(perm[i]));
      shuffled_r[i] = r[perm[i]];
    }
    EXPECT_NEAR(FScoreStar(shuffled, shuffled_r, alpha), original, 1e-12);
  }
}

TEST(InvariantsTest, AccuracyQualityMonotoneInRowConfidence) {
  // Sharpening one row toward its argmax label can only raise F(Q) under
  // Accuracy (the quality is the mean of row maxima).
  util::Rng rng(2);
  AccuracyMetric metric;
  for (int trial = 0; trial < 20; ++trial) {
    DistributionMatrix q = RandomBinary(10, rng);
    double before = metric.Quality(q);
    int i = rng.UniformInt(10);
    LabelIndex top = q.ArgMaxLabel(i);
    double p = q.At(i, top);
    double sharper = p + (1.0 - p) * rng.Uniform();
    std::vector<double> row = {top == 0 ? sharper : 1.0 - sharper,
                               top == 0 ? 1.0 - sharper : sharper};
    q.SetRow(i, row);
    EXPECT_GE(metric.Quality(q), before - 1e-12);
  }
}

TEST(InvariantsTest, FScoreQualityMonotoneInTargetEvidence) {
  // Raising the target probability of a question that the optimum already
  // returns as target cannot lower lambda*.
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    DistributionMatrix q = RandomBinary(12, rng);
    double alpha = rng.Uniform(0.1, 0.9);
    FScoreQualityResult before = SolveFScoreQuality(q, alpha);
    // Find a returned-as-target question.
    int target_question = -1;
    for (int i = 0; i < 12; ++i) {
      if (before.optimal_result[i] == 0) {
        target_question = i;
        break;
      }
    }
    if (target_question < 0) continue;
    double p = q.At(target_question, 0);
    double boosted = p + (1.0 - p) * 0.5;
    q.SetRow(target_question, std::vector<double>{boosted, 1.0 - boosted});
    EXPECT_GE(SolveFScoreQuality(q, alpha).lambda, before.lambda - 1e-12);
  }
}

TEST(InvariantsTest, FractionalOptimumScalesWithNumerator) {
  // Scaling every numerator coefficient (b, beta) by c > 0 scales the
  // optimal value by c and preserves an optimal selection's value.
  util::Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 3 + rng.UniformInt(8);
    ZeroOneFractionalProgram p;
    p.b.resize(n);
    p.d.resize(n);
    for (int i = 0; i < n; ++i) {
      p.b[i] = rng.Uniform();
      p.d[i] = rng.Uniform(0.1, 1.0);
    }
    p.beta = rng.Uniform();
    p.gamma = rng.Uniform(0.5, 2.0);
    double base = SolveUnconstrained(p).value;

    double c = rng.Uniform(0.5, 3.0);
    ZeroOneFractionalProgram scaled = p;
    for (double& b : scaled.b) b *= c;
    scaled.beta *= c;
    EXPECT_NEAR(SolveUnconstrained(scaled).value, c * base, 1e-9);
  }
}

TEST(InvariantsTest, FractionalOptimumInverselyScalesWithDenominator) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 3 + rng.UniformInt(8);
    ZeroOneFractionalProgram p;
    p.b.resize(n);
    p.d.resize(n);
    for (int i = 0; i < n; ++i) {
      p.b[i] = rng.Uniform();
      p.d[i] = rng.Uniform(0.1, 1.0);
    }
    p.beta = rng.Uniform();
    p.gamma = rng.Uniform(0.5, 2.0);
    double base = SolveUnconstrained(p).value;

    double c = rng.Uniform(0.5, 3.0);
    ZeroOneFractionalProgram scaled = p;
    for (double& d : scaled.d) d *= c;
    scaled.gamma *= c;
    EXPECT_NEAR(SolveUnconstrained(scaled).value, base / c, 1e-9);
  }
}

TEST(InvariantsTest, AddingCertainTargetRaisesRecallHeavyQuality) {
  // Appending a question with target probability 1 cannot hurt F-score*
  // quality: the optimum may always return it as target, adding equal mass
  // to numerator and to both denominator terms' balance.
  util::Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 4 + rng.UniformInt(8);
    DistributionMatrix q = RandomBinary(n, rng);
    double alpha = rng.Uniform(0.1, 0.9);
    double before = SolveFScoreQuality(q, alpha).lambda;

    DistributionMatrix extended(n + 1, 2);
    for (int i = 0; i < n; ++i) extended.SetRow(i, q.Row(i));
    extended.SetRow(n, std::vector<double>{1.0, 0.0});
    EXPECT_GE(SolveFScoreQuality(extended, alpha).lambda, before - 1e-12);
  }
}

}  // namespace
}  // namespace qasca
