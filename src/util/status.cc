#include "util/status.h"

namespace qasca::util {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace qasca::util
