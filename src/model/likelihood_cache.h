#ifndef QASCA_MODEL_LIKELIHOOD_CACHE_H_
#define QASCA_MODEL_LIKELIHOOD_CACHE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "model/worker_model.h"
#include "util/telemetry.h"

namespace qasca {

/// A worker's answer-likelihood table, transposed for the posterior-weight
/// kernels: an l-by-l row-major matrix whose row `answered` holds
/// L[answered][truth] = P(a = answered | t = truth), i.e. exactly
/// WorkerModel::AnswerProbability(answered, truth) laid out contiguously in
/// `truth`. The Eq. 16 / Eq. 18 inner loops multiply a posterior row by one
/// such likelihood row element-wise (kernels::MulRow), which the native
/// WorkerModel layouts cannot do: the WP model branches per element and the
/// confusion matrix is [truth][answered]-major, i.e. strided in `truth`.
///
/// Values are the AnswerProbability doubles verbatim, so posterior products
/// computed through a table are bit-identical to the model-call loop.
class WorkerLikelihoods {
 public:
  WorkerLikelihoods() = default;

  /// Builds the transposed table for `model`.
  static WorkerLikelihoods FromModel(const WorkerModel& model);

  /// Rebuilds in place, reusing the table's storage (scratch-friendly).
  void Rebuild(const WorkerModel& model);

  /// Row `answered`: L[answered][truth] for truth in [0, num_labels).
  const double* Row(LabelIndex answered) const {
    return table_.data() + static_cast<size_t>(answered) * num_labels_;
  }

  int num_labels() const noexcept { return num_labels_; }

 private:
  std::vector<double> table_;
  int num_labels_ = 0;
};

/// Resolves a worker id to that worker's likelihood table (the table-based
/// counterpart of WorkerModelLookup in posterior.h).
using LikelihoodLookup = std::function<const WorkerLikelihoods&(WorkerId)>;

/// Memoises per-worker likelihood tables between EM refits (DESIGN.md §12;
/// the CAFExp matrix_cache idea). Worker models only change on a full EM
/// refit, so the engine calls Invalidate() there and every HIT request in
/// between reuses the requesting worker's table instead of rebuilding it.
///
/// The cache is pure memoisation: Get() returns exactly
/// WorkerLikelihoods::FromModel(model), so decisions are bit-identical with
/// the cache on or off (the kernel-equivalence suite proves it).
///
/// Threading contract: engine-thread-only mutation (Get / Invalidate);
/// parallel kernel chunks read the returned table strictly const. Returned
/// references stay valid until the next Invalidate().
class LikelihoodCache {
 public:
  /// Optional hit/miss counters (tnames::kQwLikelihoodCacheHits/Misses);
  /// either may be nullptr. The engine wires these from its registry.
  void AttachCounters(util::Counter* hits, util::Counter* misses) {
    hits_counter_ = hits;
    misses_counter_ = misses;
  }

  /// The memoised table for `worker`, building it from `model` on miss.
  /// `model` must be the worker's current model — the caller's contract is
  /// that models only change across Invalidate() boundaries.
  const WorkerLikelihoods& Get(WorkerId worker, const WorkerModel& model);

  /// Drops every entry and bumps the refit generation. Called by the engine
  /// whenever fitted worker models change (each full EM refit).
  void Invalidate();

  /// Refit generation: how many times Invalidate() has run. Entries never
  /// survive a generation bump (invalidation-on-refit unit tests).
  uint64_t generation() const noexcept { return generation_; }
  int64_t hits() const noexcept { return hits_; }
  int64_t misses() const noexcept { return misses_; }
  int size() const noexcept { return static_cast<int>(entries_.size()); }

 private:
  std::unordered_map<WorkerId, WorkerLikelihoods> entries_;
  util::Counter* hits_counter_ = nullptr;
  util::Counter* misses_counter_ = nullptr;
  uint64_t generation_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace qasca

#endif  // QASCA_MODEL_LIKELIHOOD_CACHE_H_
