#ifndef QASCA_UTIL_RNG_H_
#define QASCA_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "util/logging.h"

namespace qasca::util {

/// Counter-based splittable generator (splitmix64). Unlike Rng, whose
/// Mersenne-twister stream must be consumed sequentially, a SplitMix64
/// stream is a pure function of its seed — so parallel kernels can derive
/// one independent stream per work item (e.g. per candidate question,
/// seeded from a base draw mixed with the question index) and produce
/// identical samples no matter which thread processes the item or in what
/// order. This is what makes sampled-Qw HIT selection bit-identical across
/// thread counts (DESIGN.md "Threading and incrementality").
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Mixes a work-item index into a base seed to derive a per-item stream.
  /// Plain xor would correlate adjacent items; the multiply by an odd
  /// constant spreads indices across the seed space first.
  static uint64_t MixSeed(uint64_t base, uint64_t item) {
    return base ^ ((item + 1) * 0xff51afd7ed558ccdULL);
  }

 private:
  uint64_t state_;
};

/// Index in [0, weights.size()) selected by the cumulative-weight rule with
/// the uniform variate `u01` in [0, 1): the deterministic core of weighted
/// random sampling, shared by Rng::SampleWeighted and the counter-based
/// parallel Qw path. Weights must be non-negative with a positive sum.
/// The span overload exists for callers holding raw scratch buffers (the
/// zero-allocation Qw kernel path); both overloads run the identical rule.
int SampleWeightedAt(std::span<const double> weights, double u01);
int SampleWeightedAt(const std::vector<double>& weights, double u01);

/// Deterministic pseudo-random source used by every stochastic component in
/// the library (simulated workers, dataset generators, Qw label sampling).
///
/// All randomness flows through explicitly seeded Rng instances so that
/// experiments and tests are bit-reproducible. The engine is a 64-bit
/// Mersenne twister; distribution helpers below avoid the libstdc++
/// distribution objects where cross-platform determinism matters.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    QASCA_CHECK_LT(lo, hi);
    return lo + (hi - lo) * Uniform();
  }

  /// Uniform integer in [0, bound).
  int UniformInt(int bound) {
    QASCA_CHECK_GT(bound, 0);
    return static_cast<int>(
        std::uniform_int_distribution<int>(0, bound - 1)(engine_));
  }

  /// Gaussian sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. This is the weighted random sampling step the paper uses
  /// to predict the label a worker would answer (Section 5.3, citing [13]).
  int SampleWeighted(const std::vector<double>& weights);

  /// Samples `count` distinct indices uniformly from [0, population) using a
  /// partial Fisher–Yates shuffle. Order of the result is random.
  std::vector<int> SampleWithoutReplacement(int population, int count);

  /// Returns a random permutation of [0, count).
  std::vector<int> Permutation(int count);

  /// Splits off an independently-seeded child generator; convenient for
  /// giving each simulated worker its own stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qasca::util

#endif  // QASCA_UTIL_RNG_H_
