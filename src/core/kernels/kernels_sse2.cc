// SSE2 kernel table. SSE2 is part of the x86-64 baseline, so this TU needs
// no extra -m flags — only -ffp-contract=off, because every multiply-add
// below must stay a correctly-rounded multiply followed by a
// correctly-rounded add to match the scalar table bit-for-bit (kernels.h).

#include "core/kernels/kernel_table.h"

#if QASCA_KERNELS_X86

#include <emmintrin.h>

namespace qasca::kernels {
namespace {

// Two 2-lane registers realise the canonical 4-lane schedule: acc01 holds
// lanes 0/1, acc23 lanes 2/3, merged ((acc0 + acc1) + acc2) + acc3.
double RowSumImpl(const double* x, int n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = _mm_add_pd(acc01, _mm_loadu_pd(x + i));
    acc23 = _mm_add_pd(acc23, _mm_loadu_pd(x + i + 2));
  }
  double lanes[4];
  _mm_storeu_pd(lanes + 0, acc01);
  _mm_storeu_pd(lanes + 2, acc23);
  double result = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (; i < n; ++i) result += x[i];
  return result;
}

double RowMaxImpl(const double* x, int n) {
  int i = 0;
  double best = x[0];
  if (n >= 2) {
    __m128d acc = _mm_loadu_pd(x);
    for (i = 2; i + 2 <= n; i += 2) {
      acc = _mm_max_pd(acc, _mm_loadu_pd(x + i));
    }
    double lanes[2];
    _mm_storeu_pd(lanes, acc);
    best = lanes[0] < lanes[1] ? lanes[1] : lanes[0];
  } else {
    i = 1;
  }
  for (; i < n; ++i) best = best < x[i] ? x[i] : best;
  return best;
}

void MulRowImpl(double* out, const double* a, const double* b, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i,
                  _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void MulRowInPlaceImpl(double* inout, const double* b, int n) {
  MulRowImpl(inout, inout, b, n);
}

void DivRowImpl(double* inout, int n, double divisor) {
  const __m128d d = _mm_set1_pd(divisor);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(inout + i, _mm_div_pd(_mm_loadu_pd(inout + i), d));
  }
  for (; i < n; ++i) inout[i] /= divisor;
}

void AxpyRowImpl(double* acc, double scale, const double* x, int n) {
  const __m128d s = _mm_set1_pd(scale);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d product = _mm_mul_pd(s, _mm_loadu_pd(x + i));
    _mm_storeu_pd(acc + i, _mm_add_pd(_mm_loadu_pd(acc + i), product));
  }
  for (; i < n; ++i) acc[i] += scale * x[i];
}

void WpAnswerDistributionImpl(const double* row, int n, double m, double off,
                              double* out) {
  const __m128d mv = _mm_set1_pd(m);
  const __m128d offv = _mm_set1_pd(off);
  const __m128d one = _mm_set1_pd(1.0);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d r = _mm_loadu_pd(row + i);
    const __m128d hit = _mm_mul_pd(mv, r);
    const __m128d miss = _mm_mul_pd(offv, _mm_sub_pd(one, r));
    _mm_storeu_pd(out + i, _mm_add_pd(hit, miss));
  }
  for (; i < n; ++i) out[i] = m * row[i] + off * (1.0 - row[i]);
}

// Vectorised over `answered` with `truth` outermost, so each out lane still
// accumulates in ascending-truth order (the bit-identity requirement).
void CmAnswerDistributionImpl(const double* cm, const double* row, int l,
                              double* out) {
  for (int a = 0; a < l; ++a) out[a] = 0.0;
  for (int t = 0; t < l; ++t) {
    const double* cm_row = cm + static_cast<long>(t) * l;
    const __m128d rt = _mm_set1_pd(row[t]);
    int a = 0;
    for (; a + 2 <= l; a += 2) {
      const __m128d product = _mm_mul_pd(_mm_loadu_pd(cm_row + a), rt);
      _mm_storeu_pd(out + a, _mm_add_pd(_mm_loadu_pd(out + a), product));
    }
    for (; a < l; ++a) out[a] += cm_row[a] * row[t];
  }
}

}  // namespace

const KernelTable& Sse2Kernels() {
  static const KernelTable table = {
      RowSumImpl,        RowMaxImpl,
      MulRowImpl,        MulRowInPlaceImpl,
      DivRowImpl,        AxpyRowImpl,
      WpAnswerDistributionImpl, CmAnswerDistributionImpl,
  };
  return table;
}

}  // namespace qasca::kernels

#else  // !QASCA_KERNELS_X86

namespace qasca::kernels {

const KernelTable& Sse2Kernels() { return ScalarKernels(); }

}  // namespace qasca::kernels

#endif  // QASCA_KERNELS_X86
