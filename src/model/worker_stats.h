#ifndef QASCA_MODEL_WORKER_STATS_H_
#define QASCA_MODEL_WORKER_STATS_H_

#include <vector>

#include "core/types.h"
#include "model/em.h"

namespace qasca {

/// Requester-facing summary of one worker's activity and estimated quality
/// — the data behind the "estimation of worker quality" analysis of
/// Section 6.2.3 and the raw material for spam review.
struct WorkerSummary {
  WorkerId worker = 0;
  /// Number of answers the worker contributed.
  int answer_count = 0;
  /// Fraction of the worker's answers that agree with the platform's
  /// current result vector — a ground-truth-free quality proxy.
  double agreement_with_results = 0.0;
  /// Mean diagonal of the worker's fitted confusion matrix (estimated
  /// probability of answering the true label, averaged over labels).
  double estimated_quality = 0.0;
};

/// Summarises every worker appearing in `answers` against the fitted
/// `parameters` and the platform's current `results`. Sorted by worker id.
std::vector<WorkerSummary> SummarizeWorkers(const AnswerSet& answers,
                                            const EmResult& parameters,
                                            const ResultVector& results);

/// Workers whose estimated quality is below `quality_threshold` — a simple
/// spam-review shortlist. Sorted by ascending estimated quality.
std::vector<WorkerSummary> SuspectedSpammers(
    const std::vector<WorkerSummary>& summaries, double quality_threshold);

}  // namespace qasca

#endif  // QASCA_MODEL_WORKER_STATS_H_
