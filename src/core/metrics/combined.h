#ifndef QASCA_CORE_METRICS_COMBINED_H_
#define QASCA_CORE_METRICS_COMBINED_H_

#include <string>

#include "core/metrics/accuracy.h"
#include "core/metrics/fscore.h"
#include "core/metrics/metric.h"

namespace qasca {

/// A requester with *two* metrics in mind — the paper's future-work item
/// Section 8(5): the convex combination
///
///   Combined*(Q, R) = beta * Accuracy*(Q, R)
///                   + (1 - beta) * F-score*(Q, R, alpha)
///
/// over a shared target label.
///
/// Neither Theorem 1 nor Theorem 2 applies directly, but an exchange
/// argument restores structure: among result vectors that return exactly m
/// questions as target, both summands improve by swapping a returned
/// question for an unreturned one with a higher target probability, so for
/// every m the optimum selects the m questions with the largest per-item
/// scores
///
///   s_i(m) = beta * (Q_{i,t} - M_i) / n
///          + (1 - beta) * Q_{i,t} / (alpha * m + gamma),
///
/// where M_i is the best non-target probability of question i and
/// gamma = (1 - alpha) * sum_i Q_{i,t}. Sweeping m = 0..n with linear-time
/// selection yields the exact optimum in O(n^2) — fast enough for result
/// inference, and validated against 2^n enumeration in the tests.
class CombinedMetric final : public EvaluationMetric {
 public:
  /// `beta` in [0, 1] weights Accuracy*; `alpha` in (0, 1) is the F-score
  /// emphasis; `target_label` is shared by both parts.
  CombinedMetric(double beta, double alpha, LabelIndex target_label = 0);

  double beta() const { return beta_; }
  double alpha() const { return alpha_; }
  LabelIndex target_label() const { return target_label_; }

  std::string name() const override;

  double EvaluateAgainstTruth(const GroundTruthVector& truth,
                              const ResultVector& result) const override;

  double Evaluate(const DistributionMatrix& q,
                  const ResultVector& result) const override;

  /// Exact optimum by the size-m sweep described above.
  ResultVector OptimalResult(const DistributionMatrix& q) const override;

 private:
  double beta_;
  double alpha_;
  LabelIndex target_label_;
  AccuracyMetric accuracy_;
  FScoreMetric fscore_;
};

}  // namespace qasca

#endif  // QASCA_CORE_METRICS_COMBINED_H_
