#include "core/metrics/accuracy.h"

#include <algorithm>

#include "util/fold.h"
#include "util/invariants.h"
#include "util/logging.h"

namespace qasca {

double AccuracyMetric::EvaluateAgainstTruth(const GroundTruthVector& truth,
                                            const ResultVector& result) const {
  QASCA_CHECK_EQ(truth.size(), result.size());
  QASCA_CHECK(!truth.empty());
  int correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == result[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

double AccuracyMetric::Evaluate(const DistributionMatrix& q,
                                const ResultVector& result) const {
  QASCA_CHECK_EQ(static_cast<int>(result.size()), q.num_questions());
  QASCA_CHECK_GT(q.num_questions(), 0);
  const double total = util::DeterministicSum(
      0, q.num_questions(), [&](int i) { return q.At(i, result[i]); });
  return total / q.num_questions();
}

ResultVector AccuracyMetric::OptimalResult(const DistributionMatrix& q) const {
  QASCA_DCHECK_OK(invariants::CheckDistributionMatrix(q));
  ResultVector result(q.num_questions());
  for (int i = 0; i < q.num_questions(); ++i) {
    result[i] = q.ArgMaxLabel(i);
  }
  return result;
}

double AccuracyMetric::Quality(const DistributionMatrix& q) const {
  QASCA_CHECK_GT(q.num_questions(), 0);
  QASCA_DCHECK_OK(invariants::CheckDistributionMatrix(q));
  const double total = util::DeterministicSum(0, q.num_questions(), [&](int i) {
    std::span<const double> row = q.Row(i);
    return *std::max_element(row.begin(), row.end());
  });
  return total / q.num_questions();
}

}  // namespace qasca
