#include "simulation/fault_plan.h"

#include "util/logging.h"
#include "util/rng.h"

namespace qasca {

FaultPlan::FaultPlan(uint64_t seed, FaultPlanOptions options)
    : seed_(seed), options_(options) {
  QASCA_CHECK_GE(options_.abandon_rate, 0.0);
  QASCA_CHECK_GE(options_.duplicate_rate, 0.0);
  QASCA_CHECK_GE(options_.crash_rate, 0.0);
  QASCA_CHECK_LE(
      options_.abandon_rate + options_.duplicate_rate + options_.crash_rate,
      1.0);
  QASCA_CHECK_GE(options_.tick_rate, 0.0);
  QASCA_CHECK_LE(options_.tick_rate, 1.0);
  QASCA_CHECK_GT(options_.max_tick_advance, 0u);
}

FaultPlan::Fault FaultPlan::At(uint64_t step) const {
  util::SplitMix64 stream(util::SplitMix64::MixSeed(seed_, step * 2));
  const double u = stream.NextDouble();
  if (u < options_.abandon_rate) return Fault::kAbandon;
  if (u < options_.abandon_rate + options_.duplicate_rate) {
    return Fault::kDuplicate;
  }
  if (u < options_.abandon_rate + options_.duplicate_rate +
              options_.crash_rate) {
    return Fault::kCrash;
  }
  return Fault::kNone;
}

uint64_t FaultPlan::TickAdvanceAt(uint64_t step) const {
  // Independent stream from At(): step*2+1 vs step*2, so fault and tick
  // decisions for the same step do not correlate.
  util::SplitMix64 stream(util::SplitMix64::MixSeed(seed_, step * 2 + 1));
  if (stream.NextDouble() >= options_.tick_rate) return 0;
  return 1 + stream.Next() % options_.max_tick_advance;
}

}  // namespace qasca
