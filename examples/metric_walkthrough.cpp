// A guided tour of the paper's worked examples (Figure 2, Examples 1-7)
// using the library's core API directly — no platform, no simulation. Run
// it next to the paper: every number printed here appears in the text.
//
// Build & run:  ./build/examples/metric_walkthrough

#include <cstdio>
#include <vector>

#include "core/assignment/fscore_online.h"
#include "core/assignment/topk_benefit.h"
#include "core/metrics/accuracy.h"
#include "core/metrics/fscore.h"
#include "model/posterior.h"
#include "model/prior.h"

int main() {
  using namespace qasca;

  // ---- Figure 2's current distribution matrix Qc (6 questions, 2 labels).
  DistributionMatrix qc(6, 2);
  qc.SetRow(0, std::vector<double>{0.8, 0.2});
  qc.SetRow(1, std::vector<double>{0.6, 0.4});
  qc.SetRow(2, std::vector<double>{0.25, 0.75});
  qc.SetRow(3, std::vector<double>{0.5, 0.5});
  qc.SetRow(4, std::vector<double>{0.9, 0.1});
  qc.SetRow(5, std::vector<double>{0.3, 0.7});

  // ---- Section 3.1: Accuracy* and Theorem 1.
  AccuracyMetric accuracy;
  ResultVector some_result = {0, 1, 1, 0, 0, 0};
  std::printf("Accuracy*(Qc, R=[1,2,2,1,1,1]) = %.2f%%   (paper: 60.83%%)\n",
              100 * accuracy.Evaluate(qc, some_result));
  std::printf("F(Qc) under Accuracy          = %.2f%%   (paper: 70.83%%)\n",
              100 * accuracy.Quality(qc));

  // ---- Section 3.2, Example 2: argmax labelling is not optimal for
  //      F-score.
  DistributionMatrix example2(2, 2);
  example2.SetRow(0, std::vector<double>{0.35, 0.65});
  example2.SetRow(1, std::vector<double>{0.55, 0.45});
  std::printf("\nExample 2 (alpha = 0.5):\n");
  std::printf("  E[F] with argmax R~=[2,1]   = %.2f%%   (paper: 48.58%%)\n",
              100 * BruteForceExpectedFScore(example2, {1, 0}, 0.5));
  std::printf("  E[F] with optimal R*=[1,1]  = %.2f%%   (paper: 53.58%%)\n",
              100 * BruteForceExpectedFScore(example2, {0, 0}, 0.5));

  // ---- Example 3: Algorithm 1's Dinkelbach iteration.
  DistributionMatrix example3(2, 2);
  example3.SetRow(0, std::vector<double>{0.35, 0.65});
  example3.SetRow(1, std::vector<double>{0.9, 0.1});
  FScoreMetric fscore_half(0.5);
  FScoreQualityResult quality = fscore_half.ComputeQuality(example3);
  std::printf("\nExample 3: lambda* = %.3f in %d iterations, threshold "
              "theta = %.3f, R* = [%d,%d]   (paper: 0.8, 3 iters, 0.4, "
              "[2,1])\n",
              quality.lambda, quality.iterations, quality.lambda * 0.5,
              quality.optimal_result[0] + 1, quality.optimal_result[1] + 1);

  // ---- Section 5, Example 6: Bayesian posterior from two answers.
  WorkerModel w1 = WorkerModel::Wp(0.7, 3);
  WorkerModel w2 = WorkerModel::Wp(0.6, 3);
  WorkerModelLookup lookup = [&](WorkerId id) -> const WorkerModel& {
    return id == 1 ? w1 : w2;
  };
  std::vector<double> posterior = ComputePosteriorRow(
      AnswerList{{1, 2}, {2, 0}}, UniformPrior(3), lookup);
  std::printf("\nExample 6: Qc2 = [%.3f, %.3f, %.3f]   (paper: [0.346, "
              "0.115, 0.539])\n",
              posterior[0], posterior[1], posterior[2]);

  // ---- Figure 2 + Examples 4-5: task assignment, both metrics.
  DistributionMatrix qw = qc;
  qw.SetRow(0, std::vector<double>{0.923, 0.077});
  qw.SetRow(1, std::vector<double>{0.818, 0.182});
  qw.SetRow(3, std::vector<double>{0.75, 0.25});
  qw.SetRow(5, std::vector<double>{0.125, 0.875});
  AssignmentRequest request;
  request.current = &qc;
  request.estimated = &qw;
  request.candidates = {0, 1, 3, 5};  // S^w = {q1, q2, q4, q6}
  request.k = 2;

  AssignmentResult by_accuracy = AssignTopKBenefit(request);
  std::printf("\nExample 4 (Accuracy): assign {q%d, q%d}   (paper: {q2, "
              "q4})\n",
              by_accuracy.selected[0] + 1, by_accuracy.selected[1] + 1);

  FScoreAssignmentOptions options;
  options.alpha = 0.75;
  AssignmentResult by_fscore = AssignFScoreOnline(request, options);
  std::printf("Example 5 (F-score, alpha=0.75): assign {q%d, q%d}, delta* "
              "= %.3f   (paper: {q1, q2}, 0.832)\n",
              by_fscore.selected[0] + 1, by_fscore.selected[1] + 1,
              by_fscore.objective);
  std::printf("\nSame state, different metric, different HIT — the point "
              "of quality-aware assignment.\n");
  return 0;
}
