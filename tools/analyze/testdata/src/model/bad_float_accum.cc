// float-determinism fixture: a raw loop-carried double fold and a
// std::accumulate call in model code must fire; the chunk-partial fold
// inside a blessed helper's argument and the allow'd loop must not.

#include <cstddef>
#include <numeric>
#include <vector>

namespace util {
template <typename F>
void ParallelFor(std::size_t begin, std::size_t end, F&& body);
}  // namespace util

double RawFold(const std::vector<double>& values) {
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    total += values[i];  // analyze:expect(float-determinism)
  }
  return total;
}

double HiddenFold(const std::vector<double>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0);  // analyze:expect(float-determinism)
}

double BlessedFold(const std::vector<double>& values) {
  double partial = 0.0;
  util::ParallelFor(0, values.size(), [&](std::size_t chunk) {
    for (std::size_t i = chunk; i < values.size(); i += 4) {
      partial += values[i];  // analyze:expect(shared-state-escape)
    }
  });
  return partial;
}

double AllowedFold(const std::vector<double>& values) {
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    total += values[i];  // analyze:allow(float-determinism)
  }
  return total;
}
