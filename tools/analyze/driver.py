"""Driver: runs the pass registry over a tree, reports, self-tests.

Usage (normally via tools/analyze.py):

  python3 tools/analyze.py                 # human-readable, exit 1 on error
  python3 tools/analyze.py --json          # machine-readable report
  python3 tools/analyze.py --passes determinism,span-names
  python3 tools/analyze.py --list-passes
  python3 tools/analyze.py --self-test     # run passes over testdata/

Exit status: 0 clean (suppressed findings do not fail the run), 1 on any
error-severity finding (or self-test mismatch), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .base import ERROR, Finding, SourceTree, apply_suppressions
from .passes import ALL_PASSES, by_name

TESTDATA = Path(__file__).resolve().parent / "testdata"


def run_passes(tree: SourceTree, passes) -> list[Finding]:
    findings: list[Finding] = []
    for pass_ in passes:
        findings.extend(pass_.run(tree))
    return apply_suppressions(tree, findings)


def report_text(findings: list[Finding], passes) -> str:
    lines = []
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    for finding in active:
        lines.append(f"{finding.location()}: {finding.severity} "
                     f"[{finding.pass_name}] {finding.message}")
    errors = sum(1 for f in active if f.severity == ERROR)
    warnings = len(active) - errors
    lines.append(f"analyze: {len(passes)} passes, {errors} errors, "
                 f"{warnings} warnings, {len(suppressed)} suppressed")
    return "\n".join(lines)


def report_json(findings: list[Finding], passes) -> str:
    active = [f for f in findings if not f.suppressed]
    return json.dumps({
        "passes": [{"name": p.name, "description": p.description}
                   for p in passes],
        "findings": [f.to_json() for f in findings],
        "errors": sum(1 for f in active if f.severity == ERROR),
        "warnings": sum(1 for f in active if f.severity != ERROR),
        "suppressed": sum(1 for f in findings if f.suppressed),
    }, indent=2)


def self_test(passes) -> int:
    """Checks the passes against the known-bad fixture tree.

    Every `analyze:expect(<pass>)` marker must be matched by an active
    finding of that pass on that exact line; there must be no unexpected
    active findings; and every pass must demonstrate both a firing fixture
    and a working `analyze:allow` suppression.
    """
    tree = SourceTree(TESTDATA)
    findings = run_passes(tree, passes)
    active = {(f.pass_name, f.path, max(f.line, 1))
              for f in findings if not f.suppressed}
    suppressed_by_pass: dict[str, int] = {}
    for f in findings:
        if f.suppressed:
            suppressed_by_pass[f.pass_name] = \
                suppressed_by_pass.get(f.pass_name, 0) + 1

    expected = set()
    for source in tree.files(("src",), extensions=(".h", ".cc")):
        for pass_name, line in source.expects():
            expected.add((pass_name, source.rel, line))

    problems = []
    for item in sorted(expected - active):
        problems.append(f"expected finding did not fire: {item[0]} at "
                        f"{item[1]}:{item[2]}")
    for item in sorted(active - expected):
        problems.append(f"unexpected finding: {item[0]} at "
                        f"{item[1]}:{item[2]}")
    for pass_ in passes:
        if not any(name == pass_.name for name, _, _ in expected):
            problems.append(f"pass {pass_.name} has no firing fixture in "
                            "testdata/")
        if suppressed_by_pass.get(pass_.name, 0) == 0:
            problems.append(f"pass {pass_.name} has no suppressed fixture "
                            "proving analyze:allow works")

    if problems:
        print("analyze --self-test: FAIL")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"analyze --self-test: OK ({len(expected)} expected findings "
          f"fired, {sum(suppressed_by_pass.values())} suppressions held, "
          f"{len(passes)} passes)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/analyze.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--repo-root", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repository root (defaults to the grandparent "
                             "of tools/analyze/)")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report")
    parser.add_argument("--passes", type=str, default="",
                        help="comma-separated subset of passes to run")
    parser.add_argument("--list-passes", action="store_true",
                        help="list registered passes and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the passes over tools/analyze/testdata/ "
                             "and check the expected findings fire")
    args = parser.parse_args(argv)

    try:
        passes = by_name([n.strip() for n in args.passes.split(",")
                          if n.strip()]) if args.passes else ALL_PASSES
    except KeyError as unknown:
        print(f"analyze: unknown pass(es): {unknown}", file=sys.stderr)
        return 2

    if args.list_passes:
        for pass_ in passes:
            print(f"{pass_.name:18} {pass_.description}")
        return 0

    if args.self_test:
        return self_test(passes)

    repo_root = args.repo_root.resolve()
    if not (repo_root / "src").is_dir():
        print(f"analyze: {repo_root} has no src/ directory", file=sys.stderr)
        return 2
    tree = SourceTree(repo_root)
    findings = run_passes(tree, passes)
    print(report_json(findings, passes) if args.json
          else report_text(findings, passes))
    active_errors = sum(1 for f in findings
                        if not f.suppressed and f.severity == ERROR)
    return 1 if active_errors else 0
