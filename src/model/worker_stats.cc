#include "model/worker_stats.h"

#include <algorithm>
#include <map>

#include "util/fold.h"
#include "util/logging.h"

namespace qasca {

std::vector<WorkerSummary> SummarizeWorkers(const AnswerSet& answers,
                                            const EmResult& parameters,
                                            const ResultVector& results) {
  QASCA_CHECK_EQ(answers.size(), results.size());
  // std::map keeps the output sorted by worker id.
  std::map<WorkerId, WorkerSummary> summaries;
  for (size_t i = 0; i < answers.size(); ++i) {
    for (const Answer& answer : answers[i]) {
      WorkerSummary& summary = summaries[answer.worker];
      summary.worker = answer.worker;
      ++summary.answer_count;
      if (answer.label == results[i]) {
        summary.agreement_with_results += 1.0;
      }
    }
  }
  std::vector<WorkerSummary> out;
  out.reserve(summaries.size());
  for (auto& [worker, summary] : summaries) {
    summary.agreement_with_results /= summary.answer_count;
    const WorkerModel& model = parameters.WorkerFor(worker);
    std::vector<double> cm = model.AsConfusionMatrix();
    const int num_labels = model.num_labels();
    const double diagonal = util::DeterministicSum(0, num_labels, [&](int j) {
      return cm[static_cast<size_t>(j) * num_labels + j];
    });
    summary.estimated_quality = diagonal / num_labels;
    out.push_back(summary);
  }
  return out;
}

std::vector<WorkerSummary> SuspectedSpammers(
    const std::vector<WorkerSummary>& summaries, double quality_threshold) {
  std::vector<WorkerSummary> suspects;
  for (const WorkerSummary& summary : summaries) {
    if (summary.estimated_quality < quality_threshold) {
      suspects.push_back(summary);
    }
  }
  std::sort(suspects.begin(), suspects.end(),
            [](const WorkerSummary& a, const WorkerSummary& b) {
              if (a.estimated_quality != b.estimated_quality) {
                return a.estimated_quality < b.estimated_quality;
              }
              return a.worker < b.worker;
            });
  return suspects;
}

}  // namespace qasca
