"""Pass `float-determinism`: floating folds go through blessed helpers.

QASCA's decisions are pinned by golden-trace hashes across thread counts,
refresh intervals and (next phase) SIMD lanes. Floating-point addition is
not associative, so the *order* of every accumulation that can reach a
decision is part of the engine's contract. That order is centralised in
the blessed fold helpers — `util::ParallelSum` / `util::ParallelFor`
chunk-partials (util/thread_pool.h, chunk-index-ordered) and the serial
`util::DeterministicSum` / `util::DeterministicFold` (util/fold.h,
strictly left-to-right) — so a future vectorised path changes one audited
place instead of forty loops.

This pass therefore flags, in src/core and src/model:

  * a scalar `double` accumulated with `+=` inside a loop when the
    accumulator is declared outside that loop (a loop-carried fold) and
    the loop is not itself the body of a blessed helper's argument;
  * any call to `std::accumulate` — its fold order is
    implementation-specified for some execution policies and it hides the
    accumulation from this audit either way.

Fixes: fold with util::DeterministicSum / DeterministicFold (serial) or
util::ParallelSum (chunked); interleaved multi-accumulator loops that do
not decompose cleanly may keep the raw loop under the checked-in baseline
(tools/analyze/baseline.json) — the baseline pins today's order as the
blessed one until the site is migrated — or carry an
`// analyze:allow(float-determinism)` with a justification.

`src/core/kernels/` is excluded wholesale: it IS the audited fold layer.
The kernel TUs implement the pinned 4-lane reduction schedule by hand
(and in intrinsics), every ISA path is proven bit-identical by the
kernel-equivalence suite, and the TUs are built -ffp-contract=off — the
raw accumulators there are the definition of the blessed order, not an
escape from it.
"""

from __future__ import annotations

from ..base import ERROR, Finding, SourceTree


class FloatDeterminismPass:
    name = "float-determinism"
    description = ("loop-carried double folds in src/core + src/model must "
                   "use the blessed helpers (util::DeterministicSum/Fold, "
                   "util::ParallelSum), not raw += or std::accumulate")
    severity = ERROR
    roots = ("src/core", "src/model")
    # The kernel layer is the audited home of the pinned fold schedules
    # (see module docstring) — its hand-ordered accumulators are the
    # contract, not a violation of it.
    excluded_prefix = "src/core/kernels/"

    def run(self, tree: SourceTree) -> list[Finding]:
        findings: list[Finding] = []
        for source in tree.files(self.roots):
            if source.rel.startswith(self.excluded_prefix):
                continue
            model = tree.model(source)
            for site in model.reductions:
                if site.blessed:
                    continue
                findings.append(Finding(
                    pass_name=self.name, severity=self.severity,
                    path=source.rel, line=site.line,
                    message=(f"raw floating fold: `{site.var} += ...` in a "
                             "loop — accumulate through "
                             "util::DeterministicSum/DeterministicFold or "
                             "util::ParallelSum so the order stays pinned")))
            for line in model.accumulate_calls:
                findings.append(Finding(
                    pass_name=self.name, severity=self.severity,
                    path=source.rel, line=line,
                    message=("std::accumulate hides the fold order — use "
                             "util::DeterministicSum/DeterministicFold "
                             "instead")))
        return findings
