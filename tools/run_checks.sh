#!/usr/bin/env bash
# Standing correctness gate for the QASCA tree (ISSUE 1; documented in
# README.md and DESIGN.md "Correctness tooling"). Runs, in order:
#
#   1. the custom invariant lint (tools/lint_invariants.py),
#   2. a warning-clean Release build (-Wall -Wextra -Werror, DCHECKs off),
#   3. clang-tidy over src/ with the project .clang-tidy profile
#      (skipped with a notice when clang-tidy is not installed),
#   4. the asan-ubsan sanitizer preset: full build + ctest with every
#      QASCA_DCHECK invariant enabled and sanitizer reports fatal,
#   5. the tsan preset over the tests labelled "threads" (the thread-pool,
#      telemetry and engine-determinism suites that drive the parallel
#      kernels) — a TSan-clean threads run is a merge gate. --tsan widens
#      this stage to the full tsan suite,
#   6. the telemetry-overhead smoke (bench/bench_telemetry_overhead, release
#      build): disabled-telemetry instrumentation on a hot loop must cost
#      < 2%.
#
# Exits non-zero as soon as any stage fails. Usage:
#
#   tools/run_checks.sh [--quick] [--tsan]
#
# --quick limits stage 4's ctest run to tests labelled "invariants"
# (the probabilistic-invariant suite plus the integration runs that sweep
# the whole engine) instead of the full suite.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

JOBS="${JOBS:-$(nproc)}"
QUICK=0
RUN_TSAN=0
for arg in "$@"; do
  case "${arg}" in
    --quick) QUICK=1 ;;
    --tsan) RUN_TSAN=1 ;;
    *)
      echo "usage: tools/run_checks.sh [--quick] [--tsan]" >&2
      exit 2
      ;;
  esac
done

stage() { printf '\n==== %s ====\n' "$*"; }

stage "1/6 invariant lint"
python3 tools/lint_invariants.py

stage "2/6 warning-clean Release build (-Werror)"
cmake --preset release -DQASCA_WERROR=ON >/dev/null
cmake --build --preset release -j "${JOBS}"

stage "3/6 clang-tidy (src/)"
if command -v clang-tidy >/dev/null 2>&1; then
  # The release preset's compile commands drive tidy so it sees the same
  # flags the real build uses.
  cmake --preset release -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cc' -print0 |
    xargs -0 -P "${JOBS}" -n 8 clang-tidy -p build-release --quiet
else
  echo "clang-tidy not installed on this host; SKIPPED (profile: .clang-tidy)"
fi

stage "4/6 asan-ubsan preset (DCHECK invariants on, reports fatal)"
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "${JOBS}"
if [[ "${QUICK}" -eq 1 ]]; then
  ctest --preset asan-ubsan-invariants -j "${JOBS}"
else
  ctest --preset asan-ubsan -j "${JOBS}"
fi

if [[ "${RUN_TSAN}" -eq 1 ]]; then
  stage "5/6 tsan preset (full suite)"
else
  stage "5/6 tsan preset (threads-labelled tests; --tsan runs the full suite)"
fi
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "${JOBS}"
if [[ "${RUN_TSAN}" -eq 1 ]]; then
  ctest --preset tsan -j "${JOBS}"
else
  ctest --preset tsan-threads -j "${JOBS}"
fi

stage "6/6 telemetry-overhead smoke (disabled instruments < 2%)"
cmake --build --preset release -j "${JOBS}" --target bench_telemetry_overhead
./build-release/bench/bench_telemetry_overhead

printf '\nAll checks passed.\n'
