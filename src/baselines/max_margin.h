#ifndef QASCA_BASELINES_MAX_MARGIN_H_
#define QASCA_BASELINES_MAX_MARGIN_H_

#include <string>
#include <vector>

#include "platform/strategy.h"

namespace qasca {

/// MaxMargin (Section 6.2.1): selects the questions with the highest
/// expected marginal improvement, disregarding the characteristics of the
/// requesting worker.
///
/// The marginal improvement of question i is the expected increase of its
/// top posterior probability if one more answer arrives from a *typical*
/// worker (the average-quality WP model in the context): each possible
/// answer j' has probability sum_j P(a=j'|t=j) * Qc_{i,j}; conditioning on
/// it yields a new row whose maximum is averaged over j'.
class MaxMarginStrategy final : public AssignmentStrategy {
 public:
  std::string name() const override { return "MaxMargin"; }

  std::vector<QuestionIndex> SelectQuestions(
      const StrategyContext& context,
      const std::vector<QuestionIndex>& candidates, int k) override;
};

}  // namespace qasca

#endif  // QASCA_BASELINES_MAX_MARGIN_H_
