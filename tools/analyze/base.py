"""Core types of the analyzer framework: findings, source files, the tree.

A pass is an object with `name`, `description`, `severity` and a
`run(tree) -> list[Finding]` method (see passes/). Passes read files
through SourceFile, which pre-computes a comment-stripped view (`code`)
with line structure preserved, so regexes neither fire on commented-out
code nor report wrong line numbers.

Suppressions: a finding of pass P at line L is suppressed when the raw
source carries `analyze:allow(P)` in a comment on line L or on line L-1
(an allow comment on its own line covers the next line). Suppressed
findings are counted and reported, but do not fail the run.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path

from .frontend import FileModel, ModelCache, build_model

ERROR = "error"
WARNING = "warning"

_ALLOW = re.compile(r"analyze:allow\(([a-z0-9_-]+)\)")
_EXPECT = re.compile(r"analyze:expect\(([a-z0-9_-]+)\)")

# Comment matcher used for stripping: block comments first (newlines inside
# are preserved by the replacement), then line comments. String literals are
# not parsed; none of the passes' patterns plausibly match inside QASCA's
# string constants, and a lint must stay cheap.
_BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
_LINE_COMMENT = re.compile(r"//[^\n]*")


@dataclass
class Finding:
    pass_name: str
    severity: str
    path: str  # repo-relative, posix
    line: int  # 1-based; 0 for whole-file findings
    message: str
    suppressed: bool = False
    baselined: bool = False
    id: str = ""  # stable fingerprint, assigned by assign_finding_ids()

    def location(self) -> str:
        return f"{self.path}:{self.line}" if self.line else self.path

    def to_json(self) -> dict:
        return {
            "id": self.id,
            "pass": self.pass_name,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }


def assign_finding_ids(tree: SourceTree, findings: list[Finding]) -> None:
    """Gives every finding a stable id: `<pass>:<path>:<digest>:<n>`.

    The digest hashes the message together with the *text* of the finding's
    source line, not its number, so findings survive unrelated edits that
    shift lines; `<n>` disambiguates identical findings in file order (two
    identical bad lines keep distinct, stable ids as long as their relative
    order holds). Baselines key on these ids.
    """
    occurrence: dict[str, int] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line)):
        source = tree.file(finding.path)
        line_text = ""
        if source is not None and 0 < finding.line <= len(source.lines):
            line_text = source.lines[finding.line - 1].strip()
        digest = hashlib.sha1(
            "|".join((finding.pass_name, finding.path,
                      " ".join(finding.message.split()),
                      line_text)).encode("utf-8")).hexdigest()[:12]
        key = f"{finding.pass_name}:{finding.path}:{digest}"
        n = occurrence.get(key, 0)
        occurrence[key] = n + 1
        finding.id = f"{key}:{n}"


def _strip_comments(text: str) -> str:
    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    return _LINE_COMMENT.sub(" ", _BLOCK_COMMENT.sub(blank, text))


@dataclass
class SourceFile:
    """One file plus the derived views every pass shares."""

    absolute: Path
    rel: str  # repo-relative posix path
    text: str = field(repr=False)

    def __post_init__(self) -> None:
        self.lines = self.text.splitlines()
        self.code = _strip_comments(self.text)
        self.code_lines = self.code.splitlines()
        # line number -> pass names allowed on that line.
        self.allows: dict[int, set[str]] = {}
        for number, line in enumerate(self.lines, start=1):
            for match in _ALLOW.finditer(line):
                self.allows.setdefault(number, set()).add(match.group(1))

    def line_of(self, offset: int) -> int:
        """1-based line containing character `offset` of text/code."""
        return self.code.count("\n", 0, offset) + 1

    def allowed(self, pass_name: str, line: int) -> bool:
        return (pass_name in self.allows.get(line, ())
                or pass_name in self.allows.get(line - 1, ()))

    def expects(self) -> list[tuple[str, int]]:
        """(pass, line) markers declared by a self-test fixture."""
        found = []
        for number, line in enumerate(self.lines, start=1):
            for match in _EXPECT.finditer(line):
                found.append((match.group(1), number))
        return found


class SourceTree:
    """Walks and caches SourceFiles under a repository root.

    Passes address directories repo-relative (e.g. "src/core"), which makes
    the same pass objects run unmodified over the real tree and over the
    testdata fixture tree (whose layout mirrors src/...).

    When the driver grounds the tree in a compile_commands.json, `universe`
    is the repo-relative set of files the build actually compiles (TUs plus
    the transitive closure of their quoted includes) and `files()` only
    yields members of it — dead files the build never sees are reported
    separately by the driver, not silently analyzed as if they were live.

    `model(source)` is the semantic frontend view of a file (tokens already
    reduced to facts: includes, calls with result usage, Status-returning
    declarations, loop reductions, allocation sites), memoized in-process
    and — when the driver attached a ModelCache — across runs keyed on
    content, which is what keeps incremental re-runs fast.
    """

    def __init__(self, root: Path, universe: set[str] | None = None,
                 model_cache: ModelCache | None = None):
        self.root = root.resolve()
        self.universe = universe
        self.model_cache = model_cache
        self._cache: dict[str, SourceFile] = {}
        self._models: dict[str, FileModel] = {}

    def file(self, rel: str) -> SourceFile | None:
        if rel not in self._cache:
            path = self.root / rel
            if not path.is_file():
                return None
            self._cache[rel] = SourceFile(
                absolute=path, rel=rel,
                text=path.read_text(encoding="utf-8"))
        return self._cache[rel]

    def files(self, roots: tuple[str, ...],
              extensions: tuple[str, ...] = (".h", ".cc")) -> list[SourceFile]:
        out: list[SourceFile] = []
        for root in roots:
            base = self.root / root
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in extensions and path.is_file():
                    rel = path.relative_to(self.root).as_posix()
                    if self.universe is not None and rel not in self.universe:
                        continue
                    out.append(self.file(rel))
        return out

    def model(self, source: SourceFile) -> FileModel:
        """The frontend FileModel for `source`, via the cross-run cache."""
        if source.rel in self._models:
            return self._models[source.rel]
        model: FileModel | None = None
        if self.model_cache is not None:
            stat = source.absolute.stat()
            model = self.model_cache.get(
                source.rel, stat, None,
                lambda: ModelCache.content_key(source.text))
            if model is None:
                model = build_model(source.code)
                self.model_cache.put(source.rel, stat,
                                     ModelCache.content_key(source.text),
                                     model)
        else:
            model = build_model(source.code)
        self._models[source.rel] = model
        return model

    def resolve_include(self, target: str) -> str | None:
        """Repo-relative path of a quoted include target, or None when it
        is not a project file. Project includes are spelled relative to
        src/ (e.g. "core/types.h"); fixture trees mirror that layout."""
        candidate = f"src/{target}"
        if (self.root / candidate).is_file():
            return candidate
        if (self.root / target).is_file():
            return target
        return None


def apply_suppressions(tree: SourceTree,
                       findings: list[Finding]) -> list[Finding]:
    """Marks findings covered by an analyze:allow comment as suppressed."""
    for finding in findings:
        source = tree.file(finding.path)
        if source is not None and finding.line > 0 and \
                source.allowed(finding.pass_name, finding.line):
            finding.suppressed = True
    return findings
